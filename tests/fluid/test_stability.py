"""Theorem 1-3 checks: stability, convergence, and the Fig. 2 reactions."""

import math

import pytest

from repro.fluid.laws import GRADIENT_LAW, POWER_LAW, QUEUE_LAW
from repro.fluid.model import FluidParams, simulate
from repro.fluid.reaction import (
    decrease_vs_buildup_rate,
    decrease_vs_queue_length,
    three_case_comparison,
)
from repro.fluid.stability import (
    convergence_time_constant,
    equilibrium,
    gradient_law_equilibria_are_degenerate,
    is_asymptotically_stable,
    linearized_eigenvalues,
    theoretical_time_constant_s,
)

B_BPS = 100e9 / 8.0
TAU = 20e-6


def params(beta_fraction=0.01):
    p = FluidParams()
    p.beta_bytes = beta_fraction * p.bdp_bytes
    return p


# ----------------------------------------------------------------------
# Theorem 1 — stability
# ----------------------------------------------------------------------
def test_eigenvalues_are_negative():
    p = params()
    eig_q, eig_w = linearized_eigenvalues(p)
    assert eig_q == pytest.approx(-1.0 / p.tau_s)
    assert eig_w == pytest.approx(-p.gamma / p.tau_s)
    assert is_asymptotically_stable(p)


def test_stability_holds_for_any_positive_gamma_and_tau():
    for gamma in (0.1, 0.5, 0.9, 1.0):
        for tau in (1e-6, 20e-6, 1e-3):
            p = FluidParams(gamma=gamma, tau_s=tau)
            assert is_asymptotically_stable(p)


def test_unique_equilibrium_matches_appendix():
    p = params()
    w_e, q_e = equilibrium(POWER_LAW, p)
    assert w_e == pytest.approx(p.bdp_bytes + p.beta_bytes)
    assert q_e == pytest.approx(p.beta_bytes)
    assert equilibrium(QUEUE_LAW, p) == equilibrium(POWER_LAW, p)


def test_gradient_law_has_no_unique_equilibrium():
    p = params()
    assert equilibrium(GRADIENT_LAW, p) is None
    assert gradient_law_equilibria_are_degenerate(
        p, [0.0, 0.1 * p.bdp_bytes, p.bdp_bytes, 10 * p.bdp_bytes]
    )


# ----------------------------------------------------------------------
# Theorem 2 — convergence with time constant δt/γ
# ----------------------------------------------------------------------
def test_convergence_time_constant_matches_theory():
    p = params()
    w_e = p.bdp_bytes + p.beta_bytes
    trace = simulate(POWER_LAW, p, 4 * p.bdp_bytes, 3 * p.bdp_bytes, 60 * p.tau_s)
    fitted = convergence_time_constant(trace.times_s, trace.window_bytes, w_e)
    assert fitted == pytest.approx(theoretical_time_constant_s(p), rel=0.05)


def test_convergence_faster_with_larger_gamma():
    slow = FluidParams(gamma=0.3)
    fast = FluidParams(gamma=0.9)
    assert theoretical_time_constant_s(fast) < theoretical_time_constant_s(slow)


def test_five_update_intervals_give_99_percent_decay():
    """The paper: convergence within ~5 update intervals (γ=1)."""
    p = FluidParams(gamma=1.0)
    decay = math.exp(-5.0)
    assert decay < 0.01  # e^{-5} = 0.67% residual error


def test_fit_rejects_degenerate_input():
    with pytest.raises(ValueError):
        convergence_time_constant([0.0, 1.0], [1.0, 1.0], 1.0)


# ----------------------------------------------------------------------
# Fig. 2 reactions
# ----------------------------------------------------------------------
def test_fig2a_voltage_flat_current_linear():
    rates = [0, 1, 2, 4, 8]
    series = decrease_vs_buildup_rate(
        bandwidth_Bps=B_BPS,
        tau_s=TAU,
        queue_bytes=0.5 * B_BPS * TAU,
        rate_multiples=rates,
    )
    voltage = series["queue-length"]
    current = series["rtt-gradient"]
    assert max(voltage) == pytest.approx(min(voltage))  # oblivious
    assert current == pytest.approx([1 + r for r in rates])


def test_fig2b_current_flat_voltage_linear():
    queues = [0.0, 0.2, 0.5, 1.0, 2.0]
    bdp = B_BPS * TAU
    series = decrease_vs_queue_length(
        bandwidth_Bps=B_BPS,
        tau_s=TAU,
        queue_lengths_bytes=[q * bdp for q in queues],
    )
    current = series["rtt-gradient"]
    voltage = series["queue-length"]
    assert max(current) == pytest.approx(min(current))  # oblivious
    assert voltage == pytest.approx([1 + q for q in queues])


def test_fig2c_orthogonal_blindness():
    cases = three_case_comparison(bandwidth_Bps=B_BPS, tau_s=TAU)
    case1, case2, case3 = cases
    # Voltage cannot tell case-2 from case-3 (same queue length).
    assert case2.voltage == pytest.approx(case3.voltage)
    # Current cannot tell case-1 from case-3 (same buildup rate).
    assert case1.current == pytest.approx(case3.current)
    # Power separates all three.
    powers = {round(c.power, 9) for c in cases}
    assert len(powers) == 3

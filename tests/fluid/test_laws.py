"""Unit tests for the control-law taxonomy (Eq. 2 / Appendix C)."""

import pytest

from repro.fluid.laws import (
    ALL_LAWS,
    DELAY_LAW,
    GRADIENT_LAW,
    POWER_LAW,
    QUEUE_LAW,
)

B = 100e9 / 8.0  # bytes/s
TAU = 20e-6
BDP = B * TAU


def test_equilibrium_targets():
    assert QUEUE_LAW.e(B, TAU) == pytest.approx(BDP)
    assert DELAY_LAW.e(B, TAU) == pytest.approx(TAU)
    assert GRADIENT_LAW.e(B, TAU) == 1.0
    assert POWER_LAW.e(B, TAU) == pytest.approx(B * B * TAU)


def test_feedback_at_equilibrium_equals_target():
    """At (q=0, q̇=0, µ=b) every law's feedback equals its target: the
    multiplicative factor is exactly 1 — no reaction at equilibrium."""
    for law in ALL_LAWS:
        factor = law.multiplicative_factor(0.0, 0.0, B, B, TAU)
        assert factor == pytest.approx(1.0), law.name


def test_voltage_law_reacts_to_queue_not_gradient():
    with_queue = QUEUE_LAW.multiplicative_factor(BDP, 0.0, B, B, TAU)
    assert with_queue == pytest.approx(2.0)
    # Changing the buildup rate changes nothing (Fig. 2a).
    fast_buildup = QUEUE_LAW.multiplicative_factor(BDP, 8 * B, B, B, TAU)
    assert fast_buildup == with_queue


def test_gradient_law_reacts_to_rate_not_queue():
    building = GRADIENT_LAW.multiplicative_factor(0.0, 8 * B, B, B, TAU)
    assert building == pytest.approx(9.0)  # 1 + 8
    # Changing the queue length changes nothing (Fig. 2b).
    with_queue = GRADIENT_LAW.multiplicative_factor(10 * BDP, 8 * B, B, B, TAU)
    assert with_queue == building


def test_delay_and_queue_laws_are_equivalent():
    """Both voltage laws produce the same multiplicative factor: RTT is
    q/b + tau, i.e. queue length in time units."""
    for q in (0.0, 0.3 * BDP, 2.0 * BDP):
        assert QUEUE_LAW.multiplicative_factor(
            q, 0.0, B, B, TAU
        ) == pytest.approx(DELAY_LAW.multiplicative_factor(q, 0.0, B, B, TAU))


def test_power_law_separates_both_dimensions():
    base = POWER_LAW.multiplicative_factor(0.5 * BDP, 0.0, B, B, TAU)
    more_queue = POWER_LAW.multiplicative_factor(1.0 * BDP, 0.0, B, B, TAU)
    more_rate = POWER_LAW.multiplicative_factor(0.5 * BDP, 2 * B, B, B, TAU)
    assert more_queue > base
    assert more_rate > base


def test_power_is_product_of_voltage_and_current_factors():
    q, qdot = 0.7 * BDP, 3 * B
    voltage_factor = QUEUE_LAW.multiplicative_factor(q, qdot, B, B, TAU)
    current_factor = GRADIENT_LAW.multiplicative_factor(q, qdot, B, B, TAU)
    power_factor = POWER_LAW.multiplicative_factor(q, qdot, B, B, TAU)
    assert power_factor == pytest.approx(voltage_factor * current_factor)


def test_law_kinds():
    assert QUEUE_LAW.kind == "voltage"
    assert DELAY_LAW.kind == "voltage"
    assert GRADIENT_LAW.kind == "current"
    assert POWER_LAW.kind == "power"

"""Fluid-model integration and Fig. 3 phase-portrait tests."""

import pytest

from repro.fluid.laws import GRADIENT_LAW, POWER_LAW, QUEUE_LAW
from repro.fluid.model import FluidParams, simulate
from repro.fluid.phase import default_initial_grid, phase_portrait


def params(beta_fraction=0.01):
    p = FluidParams()
    p.beta_bytes = beta_fraction * p.bdp_bytes
    return p


def test_power_law_converges_to_paper_equilibrium():
    """Theorem 1: (w_e, q_e) = (b·tau + beta, beta)."""
    p = params()
    trace = simulate(POWER_LAW, p, 3 * p.bdp_bytes, 2 * p.bdp_bytes, 100 * p.tau_s)
    assert trace.final_window == pytest.approx(p.bdp_bytes + p.beta_bytes, rel=0.02)
    assert trace.final_queue == pytest.approx(p.beta_bytes, rel=0.1)


def test_queue_law_converges_to_same_equilibrium():
    p = params()
    trace = simulate(QUEUE_LAW, p, 3 * p.bdp_bytes, 2 * p.bdp_bytes, 200 * p.tau_s)
    assert trace.final_window == pytest.approx(p.bdp_bytes + p.beta_bytes, rel=0.02)


def test_gradient_law_final_state_depends_on_start():
    p = params()
    low = simulate(GRADIENT_LAW, p, 1.2 * p.bdp_bytes, 0.1 * p.bdp_bytes, 100 * p.tau_s)
    high = simulate(GRADIENT_LAW, p, 4 * p.bdp_bytes, 3 * p.bdp_bytes, 100 * p.tau_s)
    # No unique equilibrium (paper Fig. 3b): different fixed points.
    assert abs(low.final_window - high.final_window) > 0.2 * p.bdp_bytes


def test_queue_never_negative_window_never_below_one():
    p = params()
    trace = simulate(QUEUE_LAW, p, 0.1 * p.bdp_bytes, 0.0, 50 * p.tau_s)
    assert min(trace.queue_bytes) >= 0.0
    assert min(trace.window_bytes) >= 1.0


def test_inflight_definition():
    p = params()
    trace = simulate(POWER_LAW, p, 2 * p.bdp_bytes, 1 * p.bdp_bytes, 5 * p.tau_s)
    for w, q, infl in zip(
        trace.window_bytes, trace.queue_bytes, trace.inflight_bytes
    ):
        assert infl == pytest.approx(min(w, p.bdp_bytes) + q)


# ----------------------------------------------------------------------
# Fig. 3: the three panels' qualitative claims
# ----------------------------------------------------------------------
def test_fig3a_voltage_unique_equilibrium_but_loss():
    portrait = phase_portrait(QUEUE_LAW, params())
    assert portrait.equilibrium_spread() < 0.05
    assert portrait.fraction_with_loss() > 0.5  # "almost every initial point"


def test_fig3b_current_no_unique_equilibrium():
    portrait = phase_portrait(GRADIENT_LAW, params())
    assert portrait.equilibrium_spread() > 0.5


def test_fig3c_power_unique_equilibrium_no_loss():
    portrait = phase_portrait(POWER_LAW, params())
    assert portrait.equilibrium_spread() < 0.05
    assert portrait.fraction_with_loss() == 0.0
    assert portrait.worst_throughput_loss() < 0.01


def test_initial_grid_spans_under_and_overshoot():
    grid = default_initial_grid(100.0)
    windows = [w for w, _ in grid]
    assert min(windows) < 100.0 < max(windows)


def test_feedback_delay_preserves_power_equilibrium():
    p = params()
    p.feedback_delay_s = p.tau_s / 2
    trace = simulate(POWER_LAW, p, 2 * p.bdp_bytes, 1 * p.bdp_bytes, 150 * p.tau_s)
    assert trace.final_window == pytest.approx(p.bdp_bytes + p.beta_bytes, rel=0.05)

"""Additional reaction-curve tests (Fig. 2 module edge cases)."""

import pytest

from repro.fluid.laws import DELAY_LAW, GRADIENT_LAW, POWER_LAW, QUEUE_LAW
from repro.fluid.reaction import (
    CaseReaction,
    decrease_vs_buildup_rate,
    decrease_vs_queue_length,
    three_case_comparison,
)

B = 100e9 / 8.0
TAU = 20e-6
BDP = B * TAU


def test_custom_law_selection():
    series = decrease_vs_buildup_rate(
        bandwidth_Bps=B,
        tau_s=TAU,
        queue_bytes=0.0,
        rate_multiples=[0, 1],
        laws=(DELAY_LAW, POWER_LAW),
    )
    assert set(series) == {"delay", "power"}


def test_zero_queue_zero_rate_is_neutral_everywhere():
    rate_series = decrease_vs_buildup_rate(
        bandwidth_Bps=B, tau_s=TAU, queue_bytes=0.0, rate_multiples=[0],
        laws=(QUEUE_LAW, GRADIENT_LAW, POWER_LAW),
    )
    for name, values in rate_series.items():
        assert values[0] == pytest.approx(1.0), name


def test_queue_length_series_with_buildup():
    """A non-zero buildup rate shifts the gradient law but not the
    queue law's dependence shape."""
    series = decrease_vs_queue_length(
        bandwidth_Bps=B, tau_s=TAU,
        queue_lengths_bytes=[0.0, BDP],
        buildup_rate_multiple=1.0,
    )
    assert series["rtt-gradient"] == pytest.approx([2.0, 2.0])
    assert series["queue-length"] == pytest.approx([1.0, 2.0])


def test_three_cases_custom():
    cases = three_case_comparison(
        bandwidth_Bps=B,
        tau_s=TAU,
        cases=[("only", 0.5 * BDP, 2.0)],
    )
    assert len(cases) == 1
    case = cases[0]
    assert isinstance(case, CaseReaction)
    assert case.voltage == pytest.approx(1.5)
    assert case.current == pytest.approx(3.0)
    assert case.power == pytest.approx(4.5)


def test_power_md_zero_when_fully_draining():
    """Draining at max rate with nothing arriving: current = 0, so the
    power law's factor collapses to 0 — i.e. maximal window increase.
    This is the case-2 behaviour that lets PowerTCP refill instantly."""
    cases = three_case_comparison(bandwidth_Bps=B, tau_s=TAU)
    case2 = cases[1]
    assert case2.buildup_rate_multiple == -1.0
    assert case2.power == pytest.approx(0.0, abs=1e-9)

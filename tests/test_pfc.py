"""Tests for the PFC (lossless fabric) substrate."""

import pytest

from repro.experiments.driver import FlowDriver
from repro.sim.buffer import SharedBuffer
from repro.sim.engine import Simulator
from repro.sim.pfc import PfcController, enable_pfc
from repro.sim.port import EgressPort
from repro.sim.switch import Switch
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.units import GBPS, MSEC


def test_watermark_validation():
    sim = Simulator()
    switch = Switch(sim, 1, buffer=SharedBuffer(10_000))
    with pytest.raises(ValueError):
        PfcController(sim, switch, [], high_watermark=5_000, low_watermark=6_000)
    with pytest.raises(ValueError):
        PfcController(sim, switch, [], high_watermark=20_000, low_watermark=1_000)


def test_requires_shared_buffer():
    sim = Simulator()
    switch = Switch(sim, 1)  # no buffer
    with pytest.raises(ValueError):
        PfcController(sim, switch, [], high_watermark=100, low_watermark=50)


def test_pause_and_resume_cycle():
    sim = Simulator()
    buf = SharedBuffer(10_000)
    switch = Switch(sim, 1, buffer=buf)
    upstream = EgressPort(sim, GBPS, 500, peer=switch)
    controller = PfcController(
        sim, switch, [upstream], high_watermark=6_000, low_watermark=3_000
    ).start()

    buf.on_enqueue(7_000)  # past the high watermark
    sim.run(until=10_000)
    assert controller.paused
    assert upstream.paused
    assert controller.pause_events == 1

    buf.on_dequeue(5_000)  # below the low watermark
    sim.run(until=20_000)
    assert not controller.paused
    assert not upstream.paused
    assert controller.resume_events == 1


def test_hysteresis_avoids_flapping():
    sim = Simulator()
    buf = SharedBuffer(10_000)
    switch = Switch(sim, 1, buffer=buf)
    upstream = EgressPort(sim, GBPS, 500, peer=switch)
    controller = PfcController(
        sim, switch, [upstream], high_watermark=6_000, low_watermark=3_000
    ).start()
    buf.on_enqueue(7_000)
    sim.run(until=5_000)
    buf.on_dequeue(2_000)  # 5000: between watermarks -> still paused
    sim.run(until=10_000)
    assert controller.paused
    assert controller.pause_events == 1


def test_enable_pfc_makes_incast_lossless():
    """With PFC, a burst that would overflow a tiny buffer instead pauses
    the senders: zero drops end to end."""

    def run(with_pfc):
        sim = Simulator()
        net = build_dumbbell(
            sim,
            DumbbellParams(
                left_hosts=4,
                right_hosts=1,
                host_bw_bps=10 * GBPS,
                bottleneck_bw_bps=10 * GBPS,
                buffer_bytes=60_000,  # tiny: static senders overflow it
            ),
        )
        if with_pfc:
            # Watermarks must sit below DT's single-queue knee (capacity/2
            # at alpha=1) with headroom for the pause reaction time.
            enable_pfc(net, high_fraction=0.25, low_fraction=0.1)
        driver = FlowDriver(net, "static", cc_params={"bdp_multiple": 4.0})
        flows = [driver.start_flow(i, 4, 300_000, at_ns=0) for i in range(4)]
        driver.run(until_ns=20 * MSEC)
        return net, flows

    lossy_net, lossy_flows = run(with_pfc=False)
    lossless_net, lossless_flows = run(with_pfc=True)
    assert lossy_net.total_drops() > 0  # the scenario is genuinely hot
    assert lossless_net.total_drops() == 0
    assert all(f.completed for f in lossless_flows)
    assert lossless_net.extras["pfc_controllers"]


def test_pfc_controllers_cover_all_buffered_switches():
    sim = Simulator()
    net = build_dumbbell(sim, DumbbellParams(left_hosts=2, right_hosts=2))
    controllers = enable_pfc(net)
    assert len(controllers) == 2  # one per switch

"""Shared helper for tests parametrized over the compiled event core.

When the optional C extension is not built, compiled-engine test cells
skip with the loader's failure reason — a *visible* skip, never a silent
pass.  CI's ``compiled-core`` job exports ``REPRO_REQUIRE_CKERNEL=1``,
which turns those skips into hard failures: in the job that just built
the extension, "not available" means the build silently fell back, which
is exactly what that job exists to catch.
"""

import os

import pytest


def require_compiled(engine_or_name) -> None:
    """Skip (or fail under REPRO_REQUIRE_CKERNEL) if the core is missing.

    Accepts an engine-config dict (``{"scheduler": ...}``) or a scheduler
    name; anything not requesting the compiled engine is a no-op.
    """
    scheduler = engine_or_name
    if isinstance(engine_or_name, dict):
        scheduler = engine_or_name.get("scheduler")
    if scheduler != "compiled":
        return
    from repro.sim import compiled_available, compiled_error

    if compiled_available():
        return
    reason = f"compiled event core not built: {compiled_error()}"
    if os.environ.get("REPRO_REQUIRE_CKERNEL"):
        pytest.fail(f"REPRO_REQUIRE_CKERNEL is set but {reason}")
    pytest.skip(reason)

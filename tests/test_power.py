"""Unit tests for the power computation (paper §3.1, Algorithm 1 lines 8-25)."""

import pytest

from repro.core.power import (
    INTPowerEstimator,
    MIN_NORM_POWER,
    normalized_power_from_delay,
    normalized_power_from_hop,
)
from repro.sim.packet import HopRecord
from repro.units import GBPS, USEC

B = 100 * GBPS
TAU = 20 * USEC
BDP = 250_000  # bytes, = 100 Gbps x 20 us


def hop(qlen, ts, tx, b=B, port=1):
    return HopRecord(qlen, ts, tx, b, port)


def test_equilibrium_power_is_one():
    # Link busy at exactly line rate, zero queue: 12.5 GB/s for 10 us.
    prev = hop(0, 0, 0)
    cur = hop(0, 10_000, 125_000)
    sample = normalized_power_from_hop(cur, prev, TAU)
    assert sample.norm == pytest.approx(1.0)
    assert sample.voltage_bytes == pytest.approx(BDP)
    assert sample.current_Bps == pytest.approx(12.5e9)


def test_queue_buildup_raises_power():
    # Same tx rate but the queue grew by 50 KB in 10 us: current > b.
    prev = hop(0, 0, 0)
    cur = hop(50_000, 10_000, 125_000)
    sample = normalized_power_from_hop(cur, prev, TAU)
    # current = 12.5G + 5G = 17.5 GB/s; voltage = 300 KB.
    assert sample.norm == pytest.approx((17.5e9 * 300_000) / (12.5e9 * BDP))
    assert sample.norm > 1.0


def test_standing_queue_raises_power_via_voltage():
    # Static queue (q̇=0): power exceeds e purely through voltage.
    prev = hop(100_000, 0, 0)
    cur = hop(100_000, 10_000, 125_000)
    sample = normalized_power_from_hop(cur, prev, TAU)
    assert sample.norm == pytest.approx(350_000 / BDP)


def test_draining_queue_lowers_power():
    # Queue drains at the full line rate: nothing arrives, current ~ 0.
    prev = hop(125_000, 0, 0)
    cur = hop(0, 10_000, 125_000)
    sample = normalized_power_from_hop(cur, prev, TAU)
    assert sample.norm == pytest.approx(0.0, abs=1e-9)


def test_idle_link_power_below_one():
    # Transmitting at half rate, empty queue: norm = 0.5.
    prev = hop(0, 0, 0)
    cur = hop(0, 10_000, 62_500)
    sample = normalized_power_from_hop(cur, prev, TAU)
    assert sample.norm == pytest.approx(0.5)


def test_zero_dt_returns_none():
    record = hop(0, 5, 100)
    assert normalized_power_from_hop(record, record, TAU) is None


def test_power_is_orthogonal_to_case_confusion():
    """The Fig. 2c argument: power separates all three cases."""
    # case-1: small queue building; case-2: big queue draining;
    # case-3: big queue building.
    c1 = normalized_power_from_hop(hop(50_000, 10_000, 125_000), hop(25_000, 0, 0), TAU)
    c2 = normalized_power_from_hop(hop(75_000, 10_000, 125_000), hop(100_000, 0, 0), TAU)
    c3 = normalized_power_from_hop(hop(125_000, 10_000, 125_000), hop(100_000, 0, 0), TAU)
    values = {round(c.norm, 6) for c in (c1, c2, c3)}
    assert len(values) == 3


# ----------------------------------------------------------------------
# Estimator (smoothing + max across hops)
# ----------------------------------------------------------------------
def test_estimator_needs_two_samples():
    est = INTPowerEstimator(TAU)
    assert est.update([hop(0, 0, 0)]) is None
    assert est.update([hop(0, 10_000, 125_000)]) is not None


def test_estimator_takes_max_across_hops():
    est = INTPowerEstimator(TAU)
    est.update([hop(0, 0, 0, port=1), hop(0, 0, 0, port=2)])
    # Port 1 at equilibrium; port 2 heavily congested.
    smoothed = est.update(
        [hop(0, 10_000, 125_000, port=1), hop(200_000, 10_000, 125_000, port=2)]
    )
    # The congested hop dominates: smoothed must exceed equilibrium-only.
    assert smoothed > 1.0


def test_estimator_smoothing_window():
    est = INTPowerEstimator(TAU)
    est.update([hop(0, 0, 0)])
    # dt = tau: smoothed == the instantaneous value.
    value = est.update([hop(0, TAU, int(12.5e9 * TAU / 1e9))])
    assert value == pytest.approx(1.0, rel=1e-6)


def test_estimator_smooths_partially_for_small_dt():
    est = INTPowerEstimator(TAU)
    est.update([hop(0, 0, 0)])
    # One-tenth of tau at double line rate (norm=2): EWMA pulls 1/10 of the way.
    est_value = est.update([hop(0, 2_000, 50_000)])
    assert est_value == pytest.approx((1.0 * 18_000 + 2.0 * 2_000) / 20_000)


def test_estimator_floor():
    est = INTPowerEstimator(TAU)
    est.update([hop(0, 0, 0)])
    for i in range(1, 100):
        est.update([hop(0, i * TAU, 0)])  # idle link, norm -> 0
    assert est.smoothed == MIN_NORM_POWER


def test_estimator_handles_none_hops():
    est = INTPowerEstimator(TAU)
    assert est.update(None) is None
    assert est.update([]) is None


# ----------------------------------------------------------------------
# θ variant (Eq. 8)
# ----------------------------------------------------------------------
def test_delay_power_at_base_rtt_is_one():
    assert normalized_power_from_delay(TAU, TAU, 1_000, TAU) == pytest.approx(1.0)


def test_delay_power_grows_with_rtt():
    norm = normalized_power_from_delay(2 * TAU, 2 * TAU, 1_000, TAU)
    assert norm == pytest.approx(2.0)


def test_delay_power_includes_gradient():
    # RTT grew by 1000 ns over 1000 ns: gradient 1 -> doubles the signal.
    norm = normalized_power_from_delay(TAU + 1_000, TAU, 1_000, TAU)
    assert norm == pytest.approx(2 * (TAU + 1_000) / TAU, rel=1e-6)


def test_delay_power_zero_dt_none():
    assert normalized_power_from_delay(TAU, TAU, 0, TAU) is None

"""Tests for the registered `multi_bottleneck` (parking-lot) scenario."""

import json

import pytest

from repro.analysis.results import ResultSet, parking_lot_pivot
from repro.experiments.multibottleneck import (
    MultiBottleneckConfig,
    run_multi_bottleneck,
)
from repro.scenarios import get_scenario, run_sweep
from repro.units import GBPS, MSEC

FAST = dict(duration_ns=3 * MSEC)


def test_default_shape_makes_last_segment_the_bottleneck():
    config = MultiBottleneckConfig(segments=3, host_bw_bps=10 * GBPS)
    assert config.resolved_segment_bw_bps() == [10 * GBPS, 10 * GBPS, 5 * GBPS]
    explicit = MultiBottleneckConfig(segment_bw_bps=[10 * GBPS, 2 * GBPS])
    assert explicit.resolved_segment_bw_bps() == [10 * GBPS, 2 * GBPS]


def test_registry_roundtrip_and_metric_schema():
    scenario = get_scenario("multi_bottleneck")
    result = scenario.run(**dict(scenario.tiny_overrides(), **FAST))
    assert result.scenario == "multi_bottleneck"
    for key in (
        "e2e_goodput_bps",
        "e2e_bottleneck_share",
        "e2e_cross_ratio",
        "bottleneck_peak_qlen_bytes",
        "drops",
    ):
        assert key in result.metrics
    assert result.metrics["e2e_goodput_bps"] > 0
    # One cross-goodput entry and one peak-queue entry per segment.
    assert len(result.series["cross_goodput_bps"]) == 2
    assert len(result.series["link_peak_qlen_bytes"]) == 2
    json.dumps(result.to_json_dict())


def test_int_law_beats_delay_law_on_default_chain():
    """The §3.5 ordering: PowerTCP's INT signal isolates the most-
    bottlenecked hop, so its end-to-end flow keeps a larger share than
    θ-PowerTCP's, which reacts to the *sum* of both hops' queueing."""
    shares = {}
    for algo in ("powertcp", "theta-powertcp"):
        r = run_multi_bottleneck(
            MultiBottleneckConfig(algorithm=algo, **FAST)
        )
        assert r.drops == 0
        shares[algo] = r.e2e_bottleneck_share()
    assert shares["powertcp"] > shares["theta-powertcp"]
    # The multi-hop flow is not starved outright under the INT law.
    assert shares["powertcp"] > 0.15


def test_cross_load_knob_adds_flows_per_segment():
    r = run_multi_bottleneck(
        MultiBottleneckConfig(cross_flows_per_segment=2, **FAST)
    )
    # Two cross flows per segment squeeze the e2e flow harder than one.
    solo = run_multi_bottleneck(MultiBottleneckConfig(**FAST))
    assert r.e2e_goodput_bps < solo.e2e_goodput_bps
    assert len(r.cross_goodput_bps) == 2
    assert all(v > 0 for v in r.cross_goodput_bps)


def test_sweep_deterministic_across_job_counts():
    grid = {"algorithm": ["powertcp", "theta-powertcp"]}
    inline = run_sweep("multi_bottleneck", grid=grid, base=FAST, jobs=1)
    parallel = run_sweep("multi_bottleneck", grid=grid, base=FAST, jobs=2)
    assert [c.result.metrics for c in inline.cells] == [
        c.result.metrics for c in parallel.cells
    ]
    assert [c.params["algorithm"] for c in inline.cells] == [
        "powertcp",
        "theta-powertcp",
    ]


def test_sweep_persists_and_loads_through_results_api(tmp_path):
    """`python -m repro sweep multi_bottleneck` end-to-end: persisted JSON
    loads through analysis/results.py and pivots into the §3.5 view."""
    sweep = run_sweep(
        "multi_bottleneck",
        grid={"algorithm": ["powertcp", "theta-powertcp"], "segments": [2, 3]},
        base=dict(duration_ns=1 * MSEC, flow_bytes=10 ** 8),
    )
    path = sweep.persist(str(tmp_path / "multi_bottleneck_sweep.json"))
    rs = ResultSet.load(path)
    assert len(rs) == 4
    assert rs.scenarios() == ["multi_bottleneck"]
    rows, cols, table = parking_lot_pivot(rs, metric="e2e_bottleneck_share")
    assert rows == [2, 3]
    assert cols == ["powertcp", "theta-powertcp"]
    assert all(v is not None and v > 0 for row in table for v in row)


def test_zero_cross_load_reports_none_ratio():
    """cross_flows_per_segment=0 is a legal config (no cross traffic);
    the §3.5 ratio is undefined, not a ZeroDivisionError after the run."""
    r = run_multi_bottleneck(
        MultiBottleneckConfig(
            cross_flows_per_segment=0, duration_ns=1 * MSEC,
            flow_bytes=10 ** 8,
        )
    )
    assert r.e2e_cross_ratio() is None
    assert r.cross_goodput_bps == [0.0, 0.0]
    # With the chain to itself the e2e flow fills the tight link.
    assert r.e2e_bottleneck_share() > 0.8
    # collect() must survive the undefined ratio too.
    scenario = get_scenario("multi_bottleneck")
    result = scenario.run(
        cross_flows_per_segment=0, duration_ns=1 * MSEC, flow_bytes=10 ** 8
    )
    assert result.metrics["e2e_cross_ratio"] is None


def test_segment_bw_list_mismatch_fails_loudly():
    with pytest.raises(ValueError, match="segments=3"):
        run_multi_bottleneck(
            MultiBottleneckConfig(
                segments=3, segment_bw_bps=[10 * GBPS, 5 * GBPS], **FAST
            )
        )

"""Per-rule tests: paired good/bad fixtures with exact ids and lines.

The fixtures live under ``tests/lint_fixtures/`` in directories that
mimic the package layout (``repro/sim/...``), so these tests exercise
each rule's path scoping as well as its AST pattern.
"""

import os

import pytest

from repro.lint import run_paths
from repro.lint.framework import lint_file
from repro.lint.registry import RULES, load_builtin_rules

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")


def _lint(*rel_parts, select=None):
    path = os.path.join(FIXTURES, *rel_parts)
    assert os.path.exists(path), path
    return run_paths([path], select=select)


#: bad fixture -> exact expected (rule-id, line) pairs
BAD_EXPECTATIONS = {
    ("repro", "sim", "bad_determinism.py"): [
        ("unseeded-rng", 9),
        ("unseeded-rng", 10),
        ("wall-clock", 11),
        ("wall-clock", 12),
        ("unordered-iteration", 14),
        ("unordered-iteration", 16),
    ],
    ("repro", "cc", "bad_feedback_retention.py"): [
        ("feedback-retention", 10),
        ("feedback-retention", 11),
        ("feedback-retention", 13),
        ("feedback-retention", 15),
        ("feedback-retention", 16),
    ],
    ("repro", "cc", "bad_unregistered.py"): [
        ("unregistered-cc", 1),
    ],
    ("repro", "routing", "bad_unregistered.py"): [
        ("unregistered-routing-policy", 1),
        ("unordered-iteration", 10),
    ],
    ("repro", "experiments", "bad_topology_import.py"): [
        ("concrete-topology-import", 3),
        ("concrete-topology-import", 4),
        ("concrete-topology-import", 5),
    ],
    ("repro", "sim", "bad_float_time.py"): [
        ("float-ns-time", 5),
        ("float-ns-time", 6),
        ("float-ns-time", 7),
        ("float-ns-time", 8),
    ],
    ("repro", "sim", "bad_cancel.py"): [
        ("cancel-fast-path", 6),
        ("cancel-fast-path", 7),
    ],
    ("repro", "sim", "bad_ckernel_import.py"): [
        ("compiled-core-import", 3),
        ("compiled-core-import", 4),
        ("compiled-core-import", 5),
        ("compiled-core-import", 6),
    ],
    ("repro", "sim", "bad_env.py"): [
        ("env-read", 8),
        ("env-read", 9),
        ("env-read", 10),
    ],
    ("repro", "sim", "bad_unused_suppression.py"): [
        ("unused-suppression", 3),
        ("unused-suppression", 4),
    ],
    ("repro", "campaign", "bad_subprocess_timeout.py"): [
        ("subprocess-timeout", 7),
        ("subprocess-timeout", 8),
        ("subprocess-timeout", 9),
        ("subprocess-timeout", 10),
        ("subprocess-timeout", 11),
        ("subprocess-timeout", 12),
    ],
}

GOOD_FIXTURES = [
    ("repro", "sim", "_compiled.py"),
    ("repro", "sim", "good_determinism.py"),
    ("repro", "cc", "good_feedback_retention.py"),
    ("repro", "routing", "good_registered.py"),
    ("repro", "experiments", "good_topology_import.py"),
    ("repro", "sim", "good_float_time.py"),
    ("repro", "sim", "good_cancel.py"),
    ("examples", "good_env.py"),
    ("repro", "campaign", "good_subprocess_timeout.py"),
]


@pytest.mark.parametrize(
    "rel_parts", sorted(BAD_EXPECTATIONS), ids=lambda p: p[-1]
)
def test_bad_fixture_exact_findings(rel_parts):
    report = _lint(*rel_parts)
    got = [(f.rule_id, f.line) for f in report.findings]
    assert sorted(got) == sorted(BAD_EXPECTATIONS[rel_parts])
    assert not report.ok


@pytest.mark.parametrize("rel_parts", GOOD_FIXTURES, ids=lambda p: p[-1])
def test_good_fixture_clean(rel_parts):
    report = _lint(*rel_parts)
    assert report.findings == []
    assert report.ok


def test_every_rule_has_a_failing_fixture():
    """Each registered rule (bar the meta check's host) detects its target."""
    load_builtin_rules()
    covered = {rule_id for pairs in BAD_EXPECTATIONS.values() for rule_id, _ in pairs}
    assert set(RULES) == covered


def test_suppression_consumed_and_counted():
    report = _lint("repro", "sim", "suppressed_ok.py")
    assert report.findings == []
    assert report.suppressed == 1


def test_select_narrows_and_skips_unused_check():
    # Only the wall-clock rule runs: the determinism fixture's other
    # findings disappear, and stale suppressions are not reported.
    report = _lint("repro", "sim", "bad_determinism.py", select=["wall-clock"])
    assert [(f.rule_id, f.line) for f in report.findings] == [
        ("wall-clock", 11),
        ("wall-clock", 12),
    ]
    stale = _lint(
        "repro", "sim", "bad_unused_suppression.py", select=["wall-clock"]
    )
    assert stale.findings == []


def test_scoping_silences_out_of_package_paths(tmp_path):
    """The same source is clean outside the scoped package dirs."""
    src = os.path.join(
        FIXTURES, "repro", "sim", "bad_determinism.py"
    )
    with open(src) as fh:
        body = fh.read()
    # under analysis/ the unordered-iteration rule must not fire (its
    # scope is sim/cc/transport/topology), while unseeded-rng still does
    target = tmp_path / "repro" / "analysis" / "moved.py"
    target.parent.mkdir(parents=True)
    target.write_text(body)
    report = run_paths([str(target)])
    rules = {f.rule_id for f in report.findings}
    assert "unordered-iteration" not in rules
    assert "unseeded-rng" in rules


def test_parse_error_is_a_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    report = run_paths([str(bad)])
    assert len(report.findings) == 1
    assert report.findings[0].rule_id == "parse-error"
    assert not report.ok


def test_lint_file_reports_repo_relative_paths():
    path = os.path.join(FIXTURES, "repro", "sim", "bad_cancel.py")
    load_builtin_rules()
    rules = [entry.make() for entry in RULES.values()]
    findings, _ = lint_file(path, rules)
    assert all(
        f.path == "tests/lint_fixtures/repro/sim/bad_cancel.py"
        for f in findings
    )

"""Tests for the traffic generators."""

import random

import pytest

from repro.topology.fattree import FatTreeParams
from repro.units import GBPS, MSEC, SEC
from repro.workloads.arrivals import inter_rack_pair, poisson_flows
from repro.workloads.distributions import WEB_SEARCH, EmpiricalCdf
from repro.workloads.incast import incast_events, synchronized_incast
from repro.workloads.permutation import all_pairs_flows, pair_flows


# ----------------------------------------------------------------------
# Flow-size distribution
# ----------------------------------------------------------------------
def test_websearch_quantiles_match_table():
    assert WEB_SEARCH.quantile(0.0) == 1
    assert WEB_SEARCH.quantile(0.15) == 10_000
    assert WEB_SEARCH.quantile(0.60) == 200_000
    assert WEB_SEARCH.quantile(1.0) == 30_000_000


def test_websearch_interpolates_between_points():
    # Halfway between P(0.6)=200K and P(0.7)=1M.
    assert WEB_SEARCH.quantile(0.65) == pytest.approx(600_000)


def test_websearch_mean_is_heavy_tailed():
    mean = WEB_SEARCH.mean_bytes()
    # Most flows are small but the mean is driven by the elephant tail.
    assert 1_000_000 < mean < 5_000_000


def test_sampling_respects_distribution():
    rng = random.Random(42)
    samples = [WEB_SEARCH.sample(rng) for _ in range(20_000)]
    small = sum(1 for s in samples if s <= 10_000) / len(samples)
    assert 0.13 < small < 0.17  # CDF says 15% at 10KB
    assert max(samples) <= 30_000_000
    assert min(samples) >= 1


def test_cdf_validation():
    with pytest.raises(ValueError):
        EmpiricalCdf([(1, 0.0)])
    with pytest.raises(ValueError):
        EmpiricalCdf([(1, 0.5), (10, 1.0)])  # must start at 0
    with pytest.raises(ValueError):
        EmpiricalCdf([(10, 0.0), (1, 1.0)])  # sizes must be sorted
    with pytest.raises(ValueError):
        WEB_SEARCH.quantile(1.5)


# ----------------------------------------------------------------------
# Poisson arrivals
# ----------------------------------------------------------------------
def small_params():
    return FatTreeParams(
        num_pods=2,
        tors_per_pod=2,
        hosts_per_tor=4,
        host_bw_bps=10 * GBPS,
        fabric_bw_bps=10 * GBPS,
    )


def test_inter_rack_pairs_never_same_rack():
    rng = random.Random(1)
    for _ in range(500):
        src, dst = inter_rack_pair(rng, 16, 4)
        assert src // 4 != dst // 4


def test_poisson_rate_tracks_load():
    rng = random.Random(7)
    p = small_params()
    duration = 50 * MSEC
    flows = poisson_flows(rng, p, WEB_SEARCH, 0.5, duration)
    offered_bits = sum(f.size_bytes for f in flows) * 8
    capacity_bits = p.num_tors * p.aggs_per_pod * p.fabric_bw_bps * duration / SEC
    load = offered_bits / capacity_bits
    assert 0.3 < load < 0.7  # noisy with few flows, but near 0.5


def test_poisson_flows_sorted_and_bounded():
    rng = random.Random(3)
    p = small_params()
    flows = poisson_flows(rng, p, WEB_SEARCH, 0.4, 10 * MSEC, max_flows=50)
    assert len(flows) <= 50
    times = [f.start_ns for f in flows]
    assert times == sorted(times)
    assert all(0 <= t < 10 * MSEC for t in times)


def test_poisson_load_validation():
    rng = random.Random(3)
    with pytest.raises(ValueError):
        poisson_flows(rng, small_params(), WEB_SEARCH, 0.0, MSEC)


def test_poisson_reproducible_with_seed():
    p = small_params()
    a = poisson_flows(random.Random(9), p, WEB_SEARCH, 0.4, 5 * MSEC)
    b = poisson_flows(random.Random(9), p, WEB_SEARCH, 0.4, 5 * MSEC)
    assert [(f.start_ns, f.src, f.dst, f.size_bytes) for f in a] == [
        (f.start_ns, f.src, f.dst, f.size_bytes) for f in b
    ]


# ----------------------------------------------------------------------
# Incast
# ----------------------------------------------------------------------
def test_incast_responders_are_remote():
    rng = random.Random(5)
    events = incast_events(
        rng,
        num_hosts=16,
        hosts_per_tor=4,
        request_rate_per_sec=1e6,
        request_size_bytes=1_000_000,
        fanout=4,
        duration_ns=100_000,
    )
    assert events
    for event in events:
        rack = event.requester // 4
        assert all(r // 4 != rack for r in event.responders)
        assert len(set(event.responders)) == len(event.responders)


def test_incast_bytes_split_across_responders():
    event = synchronized_incast(0, [4, 5, 6, 7], total_bytes=2_000_000)
    assert event.bytes_per_responder == 500_000
    assert event.total_bytes == 2_000_000


def test_incast_validation():
    rng = random.Random(5)
    with pytest.raises(ValueError):
        incast_events(
            rng,
            num_hosts=8,
            hosts_per_tor=4,
            request_rate_per_sec=0,
            request_size_bytes=100,
            fanout=2,
            duration_ns=1000,
        )
    with pytest.raises(ValueError):
        synchronized_incast(0, [], 1000)


# ----------------------------------------------------------------------
# RDCN permutation traffic
# ----------------------------------------------------------------------
def test_pair_flows_distinct_hosts():
    flows = pair_flows(0, 1, 4, flows_per_pair=4, size_bytes=100)
    srcs = [f[0] for f in flows]
    dsts = [f[1] for f in flows]
    assert len(set(srcs)) == 4
    assert all(d // 4 == 1 for d in dsts)


def test_pair_flows_wrap_when_oversubscribed():
    flows = pair_flows(0, 1, 2, flows_per_pair=5, size_bytes=100)
    assert len(flows) == 5  # wraps over the 2 hosts


def test_all_pairs_count():
    flows = all_pairs_flows(3, 2, flows_per_pair=1, size_bytes=10)
    assert len(flows) == 3 * 2  # ordered pairs


# ----------------------------------------------------------------------
# host-level permutations
# ----------------------------------------------------------------------
def test_permutation_pairs_is_a_derangement():
    import random

    from repro.workloads.permutation import permutation_pairs

    for seed in range(20):
        pairs = permutation_pairs(random.Random(seed), 9)
        srcs = [s for s, _ in pairs]
        dsts = [d for _, d in pairs]
        assert srcs == list(range(9))
        assert sorted(dsts) == list(range(9))  # each host receives once
        assert all(s != d for s, d in pairs)  # no self-flows


def test_permutation_pairs_deterministic_per_seed():
    import random

    from repro.workloads.permutation import permutation_pairs

    assert permutation_pairs(random.Random(5), 8) == permutation_pairs(
        random.Random(5), 8
    )
    assert permutation_pairs(random.Random(5), 8) != permutation_pairs(
        random.Random(6), 8
    )


def test_permutation_pairs_rejects_tiny_host_sets():
    import random

    import pytest

    from repro.workloads.permutation import permutation_pairs

    with pytest.raises(ValueError):
        permutation_pairs(random.Random(1), 1)


def test_pair_flows_validation():
    with pytest.raises(ValueError):
        pair_flows(1, 1, 4, flows_per_pair=1, size_bytes=10)
    with pytest.raises(ValueError):
        pair_flows(0, 1, 4, flows_per_pair=0, size_bytes=10)

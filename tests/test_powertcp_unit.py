"""Unit tests for the PowerTCP and θ-PowerTCP control laws.

These drive the CC objects against a stub sender (no network) so each
piece of Algorithm 1/2 is checked in isolation; end-to-end behaviour is
covered by the integration tests.
"""

import pytest

from repro.cc.base import AckFeedback
from repro.core.powertcp import PowerTcp
from repro.core.theta import ThetaPowerTcp
from repro.sim.engine import Simulator
from repro.sim.packet import HopRecord
from repro.units import GBPS, USEC

TAU = 20 * USEC
HOST_BW = 100 * GBPS
BDP = 250_000.0


class StubSender:
    def __init__(self):
        self.sim = Simulator()
        self.base_rtt_ns = TAU
        self.host_bw_bps = HOST_BW
        self.mtu_payload = 1000
        self.cwnd = 0.0
        self.pacing_rate_bps = 0.0
        self.done = False


def ack_with_hops(hops, ack_seq=0, sent_high=0):
    return AckFeedback(ack_seq=ack_seq, int_hops=hops, sent_high=sent_high)


def hop(qlen, ts, tx, port=1):
    return HopRecord(qlen, ts, tx, HOST_BW, port)


def test_initial_window_is_line_rate_bdp():
    cc = PowerTcp()
    sender = StubSender()
    cc.on_start(sender)
    assert sender.cwnd == pytest.approx(BDP)
    assert sender.pacing_rate_bps == HOST_BW


def test_beta_is_bdp_over_expected_flows():
    cc = PowerTcp(expected_flows=10)
    sender = StubSender()
    cc.on_start(sender)
    assert cc.beta_bytes == pytest.approx(BDP / 10)


def test_explicit_beta_respected():
    cc = PowerTcp(beta_bytes=1234.0)
    sender = StubSender()
    cc.on_start(sender)
    assert cc.beta_bytes == 1234.0


def test_gamma_validation():
    with pytest.raises(ValueError):
        PowerTcp(gamma=0.0)
    with pytest.raises(ValueError):
        PowerTcp(gamma=1.5)
    with pytest.raises(ValueError):
        PowerTcp(expected_flows=0)


def test_first_ack_is_a_no_op():
    cc = PowerTcp()
    sender = StubSender()
    cc.on_start(sender)
    w0 = sender.cwnd
    cc.on_ack(sender, ack_with_hops([hop(0, 0, 0)]))
    assert sender.cwnd == w0  # no dt yet


def test_window_shrinks_under_congestion():
    cc = PowerTcp(beta_bytes=0.0)
    sender = StubSender()
    cc.on_start(sender)
    cc.on_ack(sender, ack_with_hops([hop(0, 0, 0)]))
    # Queue of 1 BDP building: normalized power >> 1.
    congested = hop(250_000, TAU, int(12.5e9 * TAU / 1e9))
    w0 = sender.cwnd
    cc.on_ack(sender, ack_with_hops([congested], ack_seq=1000))
    assert sender.cwnd < w0


def test_window_update_matches_control_law():
    gamma = 0.9
    cc = PowerTcp(gamma=gamma, beta_bytes=0.0)
    sender = StubSender()
    cc.on_start(sender)
    cc.on_ack(sender, ack_with_hops([hop(0, 0, 0)]))
    # One full-tau sample at exactly double power (rate 2b, q=0).
    double = hop(0, TAU, 2 * int(12.5e9 * TAU / 1e9))
    w_old = cc._cwnd_old
    w_prev = sender.cwnd
    cc.on_ack(sender, ack_with_hops([double], ack_seq=1000))
    # smoothed power = 2 after a full-tau window.
    expected = gamma * (w_old / 2.0) + (1 - gamma) * w_prev
    assert sender.cwnd == pytest.approx(expected, rel=1e-6)


def test_update_old_once_per_rtt():
    cc = PowerTcp()
    sender = StubSender()
    cc.on_start(sender)
    cc.on_ack(sender, ack_with_hops([hop(0, 0, 0)], sent_high=50_000))
    cc.on_ack(
        sender,
        ack_with_hops([hop(0, 1_000, 12_500)], ack_seq=1_000,
                      sent_high=50_000),
    )
    assert cc._last_update_seq == 50_000
    # ACKs below the recorded send marker do not refresh cwnd_old.
    cc.on_ack(
        sender,
        ack_with_hops([hop(0, 2_000, 25_000)], ack_seq=10_000,
                      sent_high=50_000),
    )
    assert cc._last_update_seq == 50_000
    # An ACK past the marker does.
    cc.on_ack(
        sender,
        ack_with_hops([hop(0, 3_000, 37_500)], ack_seq=60_000,
                      sent_high=90_000),
    )
    assert cc._last_update_seq == 90_000


def test_window_capped():
    cc = PowerTcp(beta_bytes=0.0)
    sender = StubSender()
    cc.on_start(sender)
    cc.on_ack(sender, ack_with_hops([hop(0, 0, 0)]))
    # Nearly idle link: normalized power ~ MIN floor -> large increase,
    # but never past the cap (2x host BDP by default).
    idle = hop(0, TAU, 1_000)
    cc.on_ack(sender, ack_with_hops([idle], ack_seq=1000))
    assert sender.cwnd <= 2 * BDP + 1


# ----------------------------------------------------------------------
# θ-PowerTCP
# ----------------------------------------------------------------------
def make_theta_sender():
    cc = ThetaPowerTcp(beta_bytes=0.0)
    sender = StubSender()
    cc.on_start(sender)
    return cc, sender


def ack(seq=0, rtt=None, now=0, sent_high=0):
    return AckFeedback(ack_seq=seq, rtt_ns=rtt, now_ns=now,
                       sent_high=sent_high)


def test_theta_needs_two_rtt_samples():
    cc, sender = make_theta_sender()
    w0 = sender.cwnd
    cc.on_ack(sender, ack(rtt=TAU))
    assert sender.cwnd == w0


def test_theta_reacts_to_inflated_rtt():
    cc, sender = make_theta_sender()
    cc.on_ack(sender, ack(rtt=TAU))
    w0 = sender.cwnd
    # Queueing delay of 2 tau, one tau after the previous sample.
    cc.on_ack(sender, ack(seq=1000, rtt=3 * TAU, now=TAU))
    assert sender.cwnd < w0


def test_theta_updates_once_per_rtt():
    cc, sender = make_theta_sender()
    cc.on_ack(sender, ack(rtt=TAU, sent_high=100_000))
    cc.on_ack(sender, ack(seq=1_000, rtt=2 * TAU, now=1_000,
                          sent_high=100_000))
    w_after_first_update = sender.cwnd
    marker = cc._last_update_seq
    assert marker == 100_000
    # Another ACK within the same RTT: smoothing continues, window frozen.
    cc.on_ack(sender, ack(seq=50_000, rtt=2 * TAU, now=2_000,
                          sent_high=100_000))
    assert sender.cwnd == w_after_first_update

"""Unit tests for the optical circuit schedule, VOQ port, and controller."""

import pytest

from repro.sim.circuit import CircuitPort, CircuitSchedule, RotorController
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.units import GBPS, USEC


def make_schedule(num_tors=4, day=225 * USEC, night=20 * USEC):
    return CircuitSchedule(num_tors, day, night)


# ----------------------------------------------------------------------
# CircuitSchedule
# ----------------------------------------------------------------------
def test_default_matchings_cover_all_pairs():
    sched = make_schedule(num_tors=5)
    for tor in range(5):
        peers = {m[tor] for m in sched.matchings}
        assert peers == set(range(5)) - {tor}


def test_matchings_are_permutations():
    sched = make_schedule(num_tors=6)
    for matching in sched.matchings:
        assert sorted(matching) == list(range(6))


def test_invalid_matching_rejected():
    with pytest.raises(ValueError):
        CircuitSchedule(3, 100, 10, matchings=[[0, 0, 1]])


def test_slot_phases():
    sched = make_schedule(num_tors=3, day=100, night=20)
    assert sched.slot_at(0) == (0, False, 0)  # night first
    assert sched.slot_at(20) == (0, True, 0)  # day starts
    assert sched.slot_at(119) == (0, True, 99)
    assert sched.slot_at(120) == (1, False, 0)


def test_peer_of_day_and_night():
    sched = make_schedule(num_tors=3, day=100, night=20)
    assert sched.peer_of(0, 10) is None  # night
    assert sched.peer_of(0, 30) == 1  # matching 0: shift by 1
    assert sched.peer_of(0, 150) == 2  # matching 1: shift by 2


def test_window_for_current_and_next_period():
    sched = make_schedule(num_tors=3, day=100, night=20)
    start, end = sched.window_for(0, 1, 0)
    assert (start, end) == (20, 120)
    # After the window closed, the next period's window is returned.
    start2, end2 = sched.window_for(0, 1, 130)
    assert start2 == 20 + sched.period_ns
    assert end2 == 120 + sched.period_ns


def test_circuit_admits_prebuffer():
    sched = make_schedule(num_tors=3, day=100, night=20)
    assert not sched.circuit_admits(0, 1, 5)
    assert sched.circuit_admits(0, 1, 5, prebuffer_ns=15)
    assert sched.circuit_admits(0, 1, 50)
    assert not sched.circuit_admits(0, 1, 120)  # window closed


def test_window_for_unconnected_pair_raises():
    sched = make_schedule(num_tors=3)
    with pytest.raises(ValueError):
        sched.window_for(1, 1, 0)


# ----------------------------------------------------------------------
# CircuitPort
# ----------------------------------------------------------------------
class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.packets = []

    def receive(self, pkt):
        self.packets.append(pkt)


def test_voq_isolation_and_activation():
    sim = Simulator()
    port = CircuitPort(
        sim, 8 * GBPS, 100, tor_id=0, dst_tor_of=lambda host: host // 10
    )
    sink1, sink2 = Sink(sim), Sink(sim)
    # Host 10 is in ToR 1, host 20 in ToR 2.
    port.enqueue(Packet.data(1, 0, 10, 0, 1000))
    port.enqueue(Packet.data(2, 0, 20, 0, 1000))
    sim.run()
    assert sink1.packets == [] and sink2.packets == []  # dark circuit

    port.activate(1, sink1)
    sim.run()
    assert len(sink1.packets) == 1  # only ToR 1's VOQ drained
    assert len(sink2.packets) == 0
    assert port.voq_len_bytes(2) > 0

    port.deactivate()
    port.activate(2, sink2)
    sim.run()
    assert len(sink2.packets) == 1
    assert port.voq_len_bytes(2) == 0


def test_voq_int_stamp_reports_own_voq():
    sim = Simulator()
    port = CircuitPort(
        sim,
        8 * GBPS,
        100,
        tor_id=0,
        dst_tor_of=lambda host: host // 10,
        int_stamping=True,
    )
    sink = Sink(sim)
    first = Packet.data(1, 0, 10, 0, 1000, int_enabled=True)
    second = Packet.data(1, 0, 10, 1000, 1000, int_enabled=True)
    other = Packet.data(2, 0, 20, 0, 1000, int_enabled=True)
    port.enqueue(first)
    port.enqueue(second)
    port.enqueue(other)  # different VOQ: must not pollute flow 1's stamp
    port.activate(1, sink)
    sim.run()
    # first's stamp sees only its own VOQ (second waiting), not 'other'.
    assert first.int_hops[0].qlen == second.size


# ----------------------------------------------------------------------
# RotorController
# ----------------------------------------------------------------------
def test_controller_rotates_matchings():
    sim = Simulator()
    sched = CircuitSchedule(3, day_ns=100, night_ns=20)
    tors = [Sink(sim) for _ in range(3)]
    ports = [
        CircuitPort(sim, 8 * GBPS, 10, tor_id=i, dst_tor_of=lambda h: h // 10)
        for i in range(3)
    ]
    controller = RotorController(sim, sched, ports, tors)
    controller.start()
    sim.run(until=25)  # inside day of matching 0
    assert ports[0].active_dst == 1
    assert ports[1].active_dst == 2
    assert ports[2].active_dst == 0
    sim.run(until=125)  # night after matching 0
    assert ports[0].active_dst is None
    sim.run(until=145)  # day of matching 1
    assert ports[0].active_dst == 2
    assert controller.days_elapsed == 1


def test_controller_utilization_accounting():
    sim = Simulator()
    sched = CircuitSchedule(2, day_ns=1000, night_ns=100, matchings=[[1, 0]])
    tor_sinks = [Sink(sim), Sink(sim)]
    ports = [
        CircuitPort(sim, 8 * GBPS, 0, tor_id=i, dst_tor_of=lambda h: h // 10)
        for i in range(2)
    ]
    controller = RotorController(sim, sched, ports, tor_sinks)
    controller.start()
    # 1000B wire-size packet for ToR 1 queued at ToR 0.
    ports[0].enqueue(Packet.data(1, 0, 10, 0, 1000 - 48))
    sim.run(until=sched.period_ns + 100)
    assert controller.days_elapsed >= 1
    assert controller.day_tx_bytes == 1000
    assert 0 < controller.utilization() < 1

"""Tests for the scenario registry and the parallel sweep runner."""

import json
import os

import pytest

from repro.cli import main
from repro.scenarios import (
    Scenario,
    ScenarioResult,
    get_scenario,
    register,
    run_sweep,
    scenario_names,
)
from repro.scenarios.base import config_to_jsonable
from repro.scenarios.sweep import (
    SweepRunner,
    SweepSpec,
    cell_overrides,
    derive_cell_seed,
    expand_cells,
)

ALL_SCENARIOS = [
    "bursty",
    "coexistence",
    "event_storm",
    "fairness",
    "incast",
    "lb_matrix",
    "multi_bottleneck",
    "permutation",
    "rdcn",
    "websearch",
]


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_all_experiments_registered():
    # `faulty` is registered on demand (campaign manifests import it via
    # `modules`), so earlier tests in the same process may have added it.
    names = [n for n in scenario_names() if n != "faulty"]
    assert names == ALL_SCENARIOS


def test_unknown_scenario_raises_with_catalog():
    with pytest.raises(KeyError, match="websearch"):
        get_scenario("nope")


def test_register_rejects_anonymous_scenario():
    with pytest.raises(ValueError):
        @register
        class Nameless(Scenario):
            config_cls = dict


def test_register_rejects_duplicate_name():
    get_scenario("incast")  # ensure builtins are loaded
    with pytest.raises(ValueError, match="already registered"):
        @register
        class Impostor(Scenario):
            name = "incast"
            config_cls = dict


def test_configure_rejects_unknown_fields():
    with pytest.raises(ValueError, match="no_such_knob"):
        get_scenario("incast").configure(no_such_knob=1)


def test_run_rejects_config_plus_overrides():
    scenario = get_scenario("incast")
    config = scenario.configure(fanout=2)
    with pytest.raises(ValueError, match="not both"):
        scenario.run(config=config, fanout=4)


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_scenario_roundtrip_returns_schema_valid_result(name):
    scenario = get_scenario(name)
    result = scenario.run(**scenario.tiny_overrides())
    assert isinstance(result, ScenarioResult)
    assert result.scenario == name
    assert result.metrics, "metrics must not be empty"
    assert all(
        v is None or isinstance(v, (int, float)) for v in result.metrics.values()
    )
    for key in ("scenario", "algorithm", "seed", "config",
                "wall_time_s", "events_processed"):
        assert key in result.provenance
    assert result.provenance["events_processed"] > 0
    assert result.raw is not None
    # The persistable view must be pure JSON.
    json.dumps(result.to_json_dict())
    assert result.without_raw().raw is None


def test_cli_list_enumerates_all_scenarios(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ALL_SCENARIOS:
        assert name in out


# ----------------------------------------------------------------------
# sweep mechanics
# ----------------------------------------------------------------------
def test_expand_cells_is_ordered_product():
    spec = SweepSpec(
        scenario="incast",
        grid={"fanout": [2, 4], "algorithm": ["powertcp", "hpcc"]},
    )
    cells = expand_cells(spec)
    # product over *sorted* keys: algorithm-major, fanout-minor
    assert cells == [
        {"algorithm": "powertcp", "fanout": 2},
        {"algorithm": "powertcp", "fanout": 4},
        {"algorithm": "hpcc", "fanout": 2},
        {"algorithm": "hpcc", "fanout": 4},
    ]


def test_derived_seeds_deterministic_and_distinct():
    a = derive_cell_seed(1, {"algorithm": "powertcp", "load": 0.2})
    b = derive_cell_seed(1, {"algorithm": "powertcp", "load": 0.2})
    c = derive_cell_seed(1, {"algorithm": "powertcp", "load": 0.6})
    d = derive_cell_seed(2, {"algorithm": "powertcp", "load": 0.2})
    assert a == b
    assert a != c
    assert a != d


def test_cell_overrides_derives_seed_only_when_unpinned():
    spec = SweepSpec(scenario="websearch", grid={"load": [0.2]})
    derived = cell_overrides(spec, {"load": 0.2})
    assert derived["seed"] == derive_cell_seed(1, {"load": 0.2})

    pinned = SweepSpec(
        scenario="websearch", grid={"load": [0.2]}, base={"seed": 7}
    )
    assert cell_overrides(pinned, {"load": 0.2})["seed"] == 7

    # incast has no seed field: nothing injected
    no_seed = SweepSpec(scenario="incast", grid={"fanout": [2]})
    assert "seed" not in cell_overrides(no_seed, {"fanout": 2})


def test_sweep_rejects_unknown_grid_axis():
    with pytest.raises(ValueError, match="bogus"):
        SweepRunner(SweepSpec(scenario="incast", grid={"bogus": [1]}))


def test_sweep_rejects_empty_axis_and_bad_jobs():
    with pytest.raises(ValueError, match="empty"):
        SweepRunner(SweepSpec(scenario="incast", grid={"fanout": []}))
    with pytest.raises(ValueError, match="jobs"):
        SweepRunner(SweepSpec(scenario="incast", grid={"fanout": [2]}), jobs=0)


TINY_INCAST = dict(burst_bytes=20_000, duration_ns=1_000_000)


def test_sweep_inline_keeps_raw_and_orders_cells():
    sweep = run_sweep(
        "incast",
        grid={"algorithm": ["powertcp", "hpcc"], "fanout": [2]},
        base=TINY_INCAST,
    )
    assert [c.params["algorithm"] for c in sweep.cells] == ["powertcp", "hpcc"]
    assert all(c.result.raw is not None for c in sweep.cells)
    cell = sweep.cell(algorithm="hpcc")
    assert cell.result.metrics["fanout"] == 2


def test_parallel_sweep_matches_inline_metrics():
    grid = {"algorithm": ["powertcp", "hpcc"]}
    inline = run_sweep("incast", grid=grid, base=TINY_INCAST, jobs=1)
    parallel = run_sweep("incast", grid=grid, base=TINY_INCAST, jobs=2)
    assert [c.result.metrics for c in inline.cells] == [
        c.result.metrics for c in parallel.cells
    ]
    # process-pool results cannot carry the raw payload
    assert all(c.result.raw is None for c in parallel.cells)


def test_identical_sweeps_are_byte_identical(tmp_path):
    grid = {"algorithm": ["powertcp"], "load": [0.3]}
    base = dict(duration_ns=2_000_000, drain_ns=4_000_000,
                size_scale=1 / 16, max_flows=10)
    runs = []
    for tag in ("a", "b"):
        sweep = run_sweep("websearch", grid=grid, base=base, seed=5)
        path = sweep.persist(str(tmp_path / f"{tag}.json"))
        runs.append(json.load(open(path)))
    for doc in runs:
        for cell in doc["cells"]:
            cell["provenance"].pop("wall_time_s")
    assert runs[0] == runs[1]


def test_persist_default_path(tmp_path, monkeypatch):
    # Redirect the default results dir into tmp (never write the real
    # benchmarks/results tree from a unit test), then persist from a
    # *different* cwd: the default path must not depend on the cwd.
    import repro.scenarios.sweep as sweep_mod

    results_dir = tmp_path / "anchored" / "results"
    monkeypatch.setattr(
        sweep_mod, "DEFAULT_RESULTS_DIR", str(results_dir)
    )
    elsewhere = tmp_path / "elsewhere"
    elsewhere.mkdir()
    monkeypatch.chdir(elsewhere)
    sweep = run_sweep("incast", grid={"fanout": [2]}, base=TINY_INCAST)
    path = sweep.persist()
    assert path == str(results_dir / "incast_sweep.json")
    doc = json.load(open(path))
    assert doc["scenario"] == "incast"
    assert len(doc["cells"]) == 1
    assert doc["cells"][0]["params"] == {"fanout": 2}
    assert "metrics" in doc["cells"][0]
    # Nothing leaked into the cwd (the pre-fix behaviour grew a fresh
    # benchmarks/results tree wherever the sweep happened to run).
    assert not (elsewhere / "benchmarks").exists()


def test_default_results_path_anchored_on_repo_root(tmp_path, monkeypatch):
    """`python -m repro sweep` invoked outside the repo root must target
    the same results file (the incremental cache) as one invoked inside."""
    import repro.scenarios.sweep as sweep_mod
    from repro.scenarios.sweep import default_results_path

    inside = default_results_path("websearch")
    monkeypatch.chdir(tmp_path)
    outside = default_results_path("websearch")
    assert inside == outside
    assert os.path.isabs(outside)
    assert outside.endswith(
        os.path.join("benchmarks", "results", "websearch_sweep.json")
    )
    # The anchor is the checkout containing this package, not the cwd.
    assert outside.startswith(sweep_mod._repo_root())
    assert sweep_mod._repo_root() != str(tmp_path)


def test_rdcn_sweep_does_not_mutate_shared_base_params(tmp_path):
    """A grid base is shallow-copied into every cell, so run_rdcn must not
    write the cell's prebuffer into the shared RdcnParams — the persisted
    JSON used to record the *last* cell's prebuffer for every cell."""
    from repro.experiments.rdcn import scaled_rdcn

    shared = scaled_rdcn(num_tors=2, hosts_per_tor=2)
    sweep = run_sweep(
        "rdcn",
        grid={"prebuffer_ns": [10_000, 30_000]},
        base=dict(params=shared, duration_ns=500_000, flows_per_pair=1),
    )
    assert shared.prebuffer_ns == 0  # untouched
    path = sweep.persist(str(tmp_path / "rdcn_sweep.json"))
    doc = json.load(open(path))
    persisted = [
        (c["params"]["prebuffer_ns"], c["overrides"]["params"]["prebuffer_ns"])
        for c in doc["cells"]
    ]
    assert persisted == [(10_000, 0), (30_000, 0)]
    # Each cell's *result* still saw its own prebuffer.
    assert [c.result.raw.prebuffer_ns for c in sweep.cells] == [10_000, 30_000]


def test_config_to_jsonable_handles_opaque_leaves():
    value = config_to_jsonable({"fn": len, "xs": (1, 2), "ok": None})
    json.dumps(value)
    assert value["xs"] == [1, 2]
    assert value["ok"] is None


# ----------------------------------------------------------------------
# incremental re-runs
# ----------------------------------------------------------------------
def test_incremental_rerun_reuses_matching_cells(tmp_path):
    path = str(tmp_path / "incast_sweep.json")
    first = run_sweep("incast", grid={"fanout": [2]}, base=TINY_INCAST)
    first.persist(path)

    spec = SweepSpec(
        scenario="incast", grid={"fanout": [2, 3]}, base=TINY_INCAST
    )
    runner = SweepRunner(spec, reuse_path=path)
    grown = runner.run()
    assert runner.reused_cells == 1
    assert [c.params["fanout"] for c in grown.cells] == [2, 3]
    # The reused cell carries the persisted metrics verbatim.
    assert (
        grown.cell(fanout=2).result.metrics
        == first.cell(fanout=2).result.metrics
    )
    assert grown.cell(fanout=3).result.metrics["fanout"] == 3


def test_incremental_rerun_ignores_changed_config(tmp_path):
    path = str(tmp_path / "incast_sweep.json")
    run_sweep("incast", grid={"fanout": [2]}, base=TINY_INCAST).persist(path)
    changed = dict(TINY_INCAST, burst_bytes=30_000)
    runner = SweepRunner(
        SweepSpec(scenario="incast", grid={"fanout": [2]}, base=changed),
        reuse_path=path,
    )
    runner.run()
    assert runner.reused_cells == 0  # different config -> fresh simulation


def test_force_reruns_every_cell(tmp_path):
    path = str(tmp_path / "incast_sweep.json")
    run_sweep("incast", grid={"fanout": [2]}, base=TINY_INCAST).persist(path)
    runner = SweepRunner(
        SweepSpec(scenario="incast", grid={"fanout": [2]}, base=TINY_INCAST),
        reuse_path=path,
        force=True,
    )
    result = runner.run()
    assert runner.reused_cells == 0
    assert result.cells[0].result.raw is not None  # really re-simulated


def test_persist_keep_existing_preserves_foreign_cells(tmp_path):
    path = str(tmp_path / "incast_sweep.json")
    wide = run_sweep("incast", grid={"fanout": [2, 3]}, base=TINY_INCAST)
    wide.persist(path)
    narrow = run_sweep("incast", grid={"fanout": [2]}, base=TINY_INCAST)
    narrow.persist(path, keep_existing=True)
    doc = json.load(open(path))
    # The fanout=3 cell from the wider sweep survives the narrower write
    # (the file doubles as the incremental cache) ...
    assert sorted(c["params"]["fanout"] for c in doc["cells"]) == [2, 3]
    # ... and is reusable by a later wide sweep.
    runner = SweepRunner(
        SweepSpec(scenario="incast", grid={"fanout": [2, 3]}, base=TINY_INCAST),
        reuse_path=path,
    )
    runner.run()
    assert runner.reused_cells == 2
    # Default persist overwrites exactly (byte-identical sweeps contract).
    narrow.persist(path)
    doc = json.load(open(path))
    assert [c["params"]["fanout"] for c in doc["cells"]] == [2]


def test_persist_keep_existing_preserves_old_format_cells(tmp_path):
    path = tmp_path / "incast_sweep.json"
    sweep = run_sweep("incast", grid={"fanout": [2]}, base=TINY_INCAST)
    sweep.persist(str(path))
    # Rewrite the file in the pre-incremental format (no 'overrides').
    doc = json.load(open(path))
    for cell in doc["cells"]:
        del cell["overrides"]
    doc["cells"].append(
        {"scenario": "incast", "params": {"fanout": 9},
         "metrics": {"fanout": 9}, "series": {}, "provenance": {}}
    )
    path.write_text(json.dumps(doc))

    fresh = run_sweep("incast", grid={"fanout": [2]}, base=TINY_INCAST)
    fresh.persist(str(path), keep_existing=True)
    merged = json.load(open(path))
    fanouts = sorted(c["params"]["fanout"] for c in merged["cells"])
    # fanout=9 (old format, foreign) survives; fanout=2 is not duplicated.
    assert fanouts == [2, 9]


def test_reuse_survives_missing_or_corrupt_file(tmp_path):
    missing = str(tmp_path / "nope.json")
    runner = SweepRunner(
        SweepSpec(scenario="incast", grid={"fanout": [2]}, base=TINY_INCAST),
        reuse_path=missing,
    )
    assert len(runner.run().cells) == 1

    corrupt = tmp_path / "bad.json"
    corrupt.write_text("{not json")
    runner = SweepRunner(
        SweepSpec(scenario="incast", grid={"fanout": [2]}, base=TINY_INCAST),
        reuse_path=str(corrupt),
    )
    assert len(runner.run().cells) == 1


# ----------------------------------------------------------------------
# sharded sweeps
# ----------------------------------------------------------------------
def test_parse_shard_and_shard_path():
    from repro.scenarios.sweep import parse_shard, shard_results_path

    assert parse_shard("1/2") == (1, 2)
    assert parse_shard("3/3") == (3, 3)
    for bad in ("0/2", "3/2", "2", "a/b", "1/0", ""):
        with pytest.raises(ValueError, match="shard"):
            parse_shard(bad)
    assert shard_results_path("/x/results.json", (2, 4)).endswith(
        "results.shard-2-of-4.json"
    )


def test_sharded_runners_partition_the_grid_exactly():
    grid = {"fanout": [2, 3, 4]}
    full = run_sweep("incast", grid=grid, base=TINY_INCAST)
    shard1 = run_sweep("incast", grid=grid, base=TINY_INCAST, shard=(1, 2))
    shard2 = run_sweep("incast", grid=grid, base=TINY_INCAST, shard=(2, 2))
    assert [c.params["fanout"] for c in shard1.cells] == [2, 4]
    assert [c.params["fanout"] for c in shard2.cells] == [3]
    # The shards' cells are exactly the full run's (same derived seeds,
    # same metrics), so the merged result is shard-invariant.
    merged = {
        c.params["fanout"]: c.result.metrics
        for c in shard1.cells + shard2.cells
    }
    assert merged == {
        c.params["fanout"]: c.result.metrics for c in full.cells
    }


def test_shard_validation():
    spec = SweepSpec(scenario="incast", grid={"fanout": [2]})
    with pytest.raises(ValueError, match="shard"):
        SweepRunner(spec, shard=(0, 2))
    with pytest.raises(ValueError, match="shard"):
        SweepRunner(spec, shard=(3, 2))


def test_cli_sharded_sweep_writes_mergeable_files(tmp_path, capsys):
    from repro.analysis.results import merge_shards

    out_path = str(tmp_path / "incast_sweep.json")
    for shard in ("1/2", "2/2"):
        args = ["sweep", "incast", "--tiny", "--grid", "fanout=2,3,4",
                "--out", out_path, "--shard", shard]
        assert main(args) == 0
    out = capsys.readouterr().out
    assert "incast_sweep.shard-1-of-2.json" in out
    assert "incast_sweep.shard-2-of-2.json" in out
    merged = merge_shards(str(tmp_path), "incast_sweep")
    assert sorted(c.param("fanout") for c in merged) == [2, 3, 4]
    # Each shard file doubles as that shard's incremental cache.
    assert main(args) == 0
    assert "reused 1 cached" in capsys.readouterr().out


def test_cli_rejects_bad_shard():
    with pytest.raises(SystemExit, match="shard"):
        main(["sweep", "incast", "--tiny", "--grid", "fanout=2",
              "--shard", "5/2"])


# ----------------------------------------------------------------------
# the new scenarios
# ----------------------------------------------------------------------
def test_coexistence_mixed_deployment_reports_groups():
    scenario = get_scenario("coexistence")
    result = scenario.run(
        algorithm_a="powertcp",
        algorithm_b="dcqcn",
        flows_per_group=1,
        duration_ns=1_000_000,
    )
    metrics = result.metrics
    assert 0.0 < metrics["group_a_share"] < 1.0
    assert 0.0 < metrics["group_b_share"] < 1.0
    assert metrics["cross_group_ratio"] is not None
    assert result.provenance["algorithm"] == "powertcp+dcqcn"


def test_coexistence_homogeneous_control_is_fair():
    scenario = get_scenario("coexistence")
    result = scenario.run(
        algorithm_a="powertcp",
        algorithm_b="powertcp",
        flows_per_group=1,
        duration_ns=2_000_000,
    )
    # Same scheme on both groups: shares should be close to equal.
    ratio = result.metrics["cross_group_ratio"]
    assert 0.7 < ratio < 1.4


def test_permutation_uses_seeded_derangement():
    scenario = get_scenario("permutation")
    a = scenario.run(**dict(scenario.tiny_overrides(), seed=3))
    b = scenario.run(**dict(scenario.tiny_overrides(), seed=3))
    c = scenario.run(**dict(scenario.tiny_overrides(), seed=4))
    assert a.metrics == b.metrics
    assert a.metrics["completed"] == a.metrics["total_flows"]
    # A different seed permutes differently (goodputs differ).
    assert a.series != c.series

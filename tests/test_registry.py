"""Tests for the algorithm registry (name -> spec wiring)."""

import pytest

from repro.cc.registry import PAPER_ALGORITHMS, make_algorithm
from repro.cc.hpcc import Hpcc
from repro.core.powertcp import PowerTcp
from repro.core.theta import ThetaPowerTcp


def test_all_paper_algorithms_resolve():
    for name in PAPER_ALGORITHMS:
        spec = make_algorithm(name)
        assert spec.name == name


def test_unknown_name_raises():
    with pytest.raises(KeyError):
        make_algorithm("bbr")


def test_powertcp_aliases():
    assert make_algorithm("powertcp-int").name == "powertcp"
    assert make_algorithm("PowerTCP").name == "powertcp"
    assert make_algorithm("theta").name == "theta-powertcp"
    assert make_algorithm("powertcp-delay").name == "theta-powertcp"


def test_int_flags():
    assert make_algorithm("powertcp").needs_int
    assert make_algorithm("hpcc").needs_int
    assert not make_algorithm("theta-powertcp").needs_int
    assert not make_algorithm("timely").needs_int


def test_dcqcn_spec_has_ecn_and_cnp():
    spec = make_algorithm("dcqcn")
    assert spec.needs_ecn
    assert spec.cnp_interval_ns == 50_000
    assert spec.ecn_fn is not None


def test_dctcp_spec_defers_ecn_to_harness():
    spec = make_algorithm("dctcp")
    assert spec.needs_ecn
    assert spec.ecn_fn is None  # threshold depends on base RTT


def test_homa_spec_is_receiver_driven():
    spec = make_algorithm("homa", overcommitment=3)
    assert spec.is_homa
    assert spec.homa_overcommit == 3
    assert spec.make_cc is None


def test_cc_params_forwarded():
    spec = make_algorithm("powertcp", gamma=0.5, expected_flows=4)
    cc = spec.make_cc(None, None)
    assert isinstance(cc, PowerTcp)
    assert cc.gamma == 0.5
    assert cc.expected_flows == 4


def test_each_flow_gets_fresh_cc_instance():
    spec = make_algorithm("hpcc")
    a = spec.make_cc(None, None)
    b = spec.make_cc(None, None)
    assert isinstance(a, Hpcc) and isinstance(b, Hpcc)
    assert a is not b


def test_retcp_requires_rdcn_context():
    from repro.sim.engine import Simulator
    from repro.topology.rdcn import RdcnParams, build_rdcn
    from repro.transport.flow import Flow
    from repro.units import USEC

    spec = make_algorithm("retcp", prebuffer_ns=600 * USEC, flows_per_pair=2)
    sim = Simulator()
    net = build_rdcn(sim, RdcnParams(num_tors=3, hosts_per_tor=2))
    cc = spec.make_cc(Flow(1, 0, 2, 1000), net)
    assert cc.src_tor == 0
    assert cc.dst_tor == 1
    assert cc.prebuffer_ns == 600 * USEC

"""Tests for the decorator-based CC registry (name -> entry -> spec)."""

import pytest

from repro.cc.hpcc import Hpcc
from repro.cc.registry import (
    ALGORITHMS,
    HOMA_TRANSPORT,
    PAPER_ALGORITHMS,
    AlgorithmSpec,
    Requirements,
    algorithm_names,
    get_algorithm,
    make_algorithm,
    register,
)
from repro.core.powertcp import PowerTcp


def test_all_paper_algorithms_resolve():
    for name in PAPER_ALGORITHMS:
        spec = make_algorithm(name)
        assert spec.name == name


def test_registry_catalog_contains_extensions():
    names = algorithm_names()
    for name in ("swift", "dctcp", "static", "newreno", "cubic", "retcp"):
        assert name in names


def test_unknown_name_raises_with_catalog():
    with pytest.raises(KeyError, match="powertcp"):
        make_algorithm("bbr")


def test_powertcp_aliases():
    assert make_algorithm("powertcp-int").name == "powertcp"
    assert make_algorithm("PowerTCP").name == "powertcp"
    assert make_algorithm("theta").name == "theta-powertcp"
    assert make_algorithm("powertcp-delay").name == "theta-powertcp"


def test_aliases_resolve_to_the_same_entry():
    assert get_algorithm("powertcp-int") is get_algorithm("powertcp")
    assert get_algorithm("theta") is get_algorithm("theta-powertcp")
    assert get_algorithm("POWERTCP_INT") is get_algorithm("powertcp")


def test_int_requirements():
    assert make_algorithm("powertcp").needs_int
    assert make_algorithm("hpcc").needs_int
    assert not make_algorithm("theta-powertcp").needs_int
    assert not make_algorithm("timely").needs_int


def test_dcqcn_requirements_declare_ecn_and_cnp():
    spec = make_algorithm("dcqcn")
    assert spec.needs_ecn
    assert spec.cnp_interval_ns == 50_000
    config = spec.requirements.ecn_config(100e9, 20_000)
    assert config.kmin == 100_000 and config.kmax == 400_000


def test_dctcp_ecn_factory_uses_base_rtt():
    spec = make_algorithm("dctcp")
    assert spec.needs_ecn
    small = spec.requirements.ecn_config(10e9, 10_000)
    large = spec.requirements.ecn_config(10e9, 40_000)
    assert small.kmin == small.kmax  # step marking
    assert large.kmin == pytest.approx(4 * small.kmin, abs=4)


def test_homa_spec_is_receiver_driven():
    spec = make_algorithm("homa", overcommitment=3)
    assert spec.is_homa
    assert spec.requirements.transport == HOMA_TRANSPORT
    assert spec.params["overcommitment"] == 3
    assert spec.make_cc(None, None) is None


def test_cc_params_forwarded():
    spec = make_algorithm("powertcp", gamma=0.5, expected_flows=4)
    cc = spec.make_cc(None, None)
    assert isinstance(cc, PowerTcp)
    assert cc.gamma == 0.5
    assert cc.expected_flows == 4


def test_each_flow_gets_fresh_cc_instance():
    spec = make_algorithm("hpcc")
    a = spec.make_cc(None, None)
    b = spec.make_cc(None, None)
    assert isinstance(a, Hpcc) and isinstance(b, Hpcc)
    assert a is not b


def test_unknown_param_names_algorithm_and_accepted_set():
    with pytest.raises(TypeError) as excinfo:
        make_algorithm("powertcp", gama=0.9)
    message = str(excinfo.value)
    assert "powertcp" in message
    assert "'gama'" in message
    assert "gamma" in message and "expected_flows" in message


def test_unknown_param_rejected_for_factory_and_transport_entries():
    with pytest.raises(TypeError, match="homa"):
        make_algorithm("homa", fanout=3)
    with pytest.raises(TypeError, match="retcp"):
        make_algorithm("retcp", prebufer_ns=100)


def test_unbound_spec_cannot_make_cc():
    spec = AlgorithmSpec(name="adhoc")
    with pytest.raises(ValueError, match="registry entry"):
        spec.make_cc(None, None)


def test_register_rejects_duplicate_names_and_aliases():
    with pytest.raises(ValueError, match="already"):

        @register("powertcp")
        class Impostor:  # pragma: no cover - never instantiated
            pass

    with pytest.raises(ValueError, match="already"):

        @register("fresh-name", aliases=("theta",))
        class AliasSquatter:  # pragma: no cover - never instantiated
            pass

    assert "fresh-name" not in ALGORITHMS  # nothing half-registered

    # Class-less entries have no identity to re-match: a second
    # registration under the same name must not silently overwrite.
    from repro.cc.registry import register_algorithm

    homa = ALGORITHMS["homa"]
    with pytest.raises(ValueError, match="already registered"):
        register_algorithm("homa")
    assert ALGORITHMS["homa"] is homa


def test_requirements_union_merges_features():
    union = Requirements.union(
        [
            make_algorithm("powertcp").requirements,
            make_algorithm("dcqcn").requirements,
        ]
    )
    assert union.int_stamping
    assert union.ecn_config is make_algorithm("dcqcn").requirements.ecn_config


def test_requirements_union_rejects_conflicting_ecn():
    with pytest.raises(ValueError, match="conflicting ECN"):
        Requirements.union(
            [
                make_algorithm("dcqcn").requirements,
                make_algorithm("dctcp").requirements,
            ]
        )


def test_retcp_requires_rdcn_context():
    from repro.sim.engine import Simulator
    from repro.topology.rdcn import RdcnParams, build_rdcn
    from repro.transport.flow import Flow
    from repro.units import USEC

    entry = get_algorithm("retcp")
    assert entry.requires_network
    spec = make_algorithm("retcp", prebuffer_ns=600 * USEC, flows_per_pair=2)
    sim = Simulator()
    net = build_rdcn(sim, RdcnParams(num_tors=3, hosts_per_tor=2))
    cc = spec.make_cc(Flow(1, 0, 2, 1000), net)
    assert cc.src_tor == 0
    assert cc.dst_tor == 1
    assert cc.prebuffer_ns == 600 * USEC

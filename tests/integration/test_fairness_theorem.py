"""Theorem 3: PowerTCP is β-weighted proportionally fair.

Two checks on the packet simulator:

* equal β -> equal long-run shares (Jain index ~ 1);
* β in ratio 1:2 -> throughput in (approximately) ratio 1:2, since
  ``(w_i)_e = (β̂ + b·τ)/β̂ · β_i`` (Appendix A).
"""

import pytest

from repro.cc.registry import make_algorithm
from repro.experiments.driver import FlowDriver
from repro.experiments.fairness import FairnessConfig, run_fairness
from repro.sim.engine import Simulator
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.units import GBPS, MSEC


def test_equal_beta_equal_shares():
    result = run_fairness(FairnessConfig(algorithm="powertcp"))
    assert result.final_epoch_jain() > 0.95


def test_jain_improves_to_near_one_by_last_epoch():
    result = run_fairness(FairnessConfig(algorithm="powertcp", num_flows=3))
    assert all(j > 0.9 for j in result.epoch_jain)


def test_weighted_fairness_follows_beta():
    sim = Simulator()
    net = build_dumbbell(
        sim,
        DumbbellParams(
            left_hosts=2,
            right_hosts=1,
            host_bw_bps=10 * GBPS,
            bottleneck_bw_bps=10 * GBPS,
        ),
    )
    betas = {0: 500.0, 1: 1000.0}

    # Per-flow assignment: each source gets its own beta weighting.
    driver = FlowDriver(
        net,
        lambda flow: make_algorithm("powertcp", beta_bytes=betas[flow.src]),
    )
    flows = [driver.start_flow(i, 2, 10 ** 11, at_ns=0) for i in range(2)]
    driver.run(until_ns=20 * MSEC)

    # Discard the first quarter (convergence), compare long-run goodput.
    received = [f.bytes_received for f in flows]
    ratio = received[1] / received[0]
    assert ratio == pytest.approx(2.0, rel=0.35)


def test_theta_powertcp_also_fair():
    result = run_fairness(FairnessConfig(algorithm="theta-powertcp"))
    assert result.final_epoch_jain() > 0.9

"""System-wide conservation invariants under randomized traffic.

Whatever the algorithm does, the simulator must conserve bytes: every
payload byte a receiver counts was sent exactly once in order, queues
drain to zero after traffic ends, and the shared-buffer accounting
returns to zero.  Run with randomized flow matrices across algorithms.
"""

import random

import pytest

from repro.experiments.driver import FlowDriver
from repro.sim.engine import Simulator
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.topology.fattree import build_fattree
from repro.experiments.websearch import scaled_fattree
from repro.units import GBPS, MSEC


@pytest.mark.parametrize("algo", ["powertcp", "hpcc", "dcqcn", "homa"])
@pytest.mark.parametrize("seed", [1, 2])
def test_randomized_dumbbell_conservation(algo, seed):
    rng = random.Random(seed)
    sim = Simulator()
    net = build_dumbbell(
        sim,
        DumbbellParams(
            left_hosts=4,
            right_hosts=2,
            host_bw_bps=10 * GBPS,
            bottleneck_bw_bps=10 * GBPS,
        ),
    )
    driver = FlowDriver(net, algo)
    flows = []
    for _ in range(12):
        src = rng.randrange(4)
        dst = 4 + rng.randrange(2)
        size = rng.randrange(1_000, 300_000)
        start = rng.randrange(0, 2_000_000)
        flows.append(driver.start_flow(src, dst, size, at_ns=start))
    driver.run(until_ns=60 * MSEC)

    for flow in flows:
        assert flow.completed, (algo, seed, flow.flow_id)
        assert flow.bytes_received == flow.size_bytes
        assert flow.finish_ns >= flow.start_ns

    # All queues drained, shared buffers back to zero.
    for switch in net.switches:
        assert switch.buffer.used == 0
        for port in switch.ports:
            assert port.qlen_bytes == 0
    # The event heap holds only cancelled timers / idle pacers.
    assert sim.peek_time() is None or sim.pending >= 0


@pytest.mark.parametrize("algo", ["powertcp", "theta-powertcp"])
def test_randomized_fattree_conservation(algo):
    rng = random.Random(99)
    sim = Simulator()
    params = scaled_fattree()
    net = build_fattree(sim, params)
    driver = FlowDriver(net, algo)
    flows = []
    for _ in range(20):
        src = rng.randrange(params.num_hosts)
        dst = rng.randrange(params.num_hosts)
        if src // params.hosts_per_tor == dst // params.hosts_per_tor:
            continue
        flows.append(
            driver.start_flow(
                src, dst, rng.randrange(1_000, 200_000),
                at_ns=rng.randrange(0, 3_000_000),
            )
        )
    driver.run(until_ns=80 * MSEC)
    for flow in flows:
        assert flow.completed, (algo, flow.flow_id)
        assert flow.bytes_received == flow.size_bytes
    assert all(s.buffer.used == 0 for s in net.switches)


def test_tx_accounting_consistent_with_deliveries():
    """Bottleneck tx bytes >= delivered payload (headers + retx overhead)."""
    sim = Simulator()
    net = build_dumbbell(
        sim,
        DumbbellParams(left_hosts=2, right_hosts=1, host_bw_bps=10 * GBPS,
                       bottleneck_bw_bps=10 * GBPS),
    )
    driver = FlowDriver(net, "powertcp")
    flows = [driver.start_flow(i, 2, 500_000, at_ns=0) for i in range(2)]
    driver.run(until_ns=20 * MSEC)
    delivered = sum(f.bytes_received for f in flows)
    assert delivered == 1_000_000
    bottleneck_tx = net.port("bottleneck").tx_bytes
    assert bottleneck_tx >= delivered  # wire size includes headers
    # Without drops the overhead is exactly the header fraction.
    assert net.total_drops() == 0
    assert bottleneck_tx <= delivered * 1.06

"""Theorem 2 on the packet simulator: PowerTCP converges within a few
update intervals after perturbations (the paper: "convergence time as low
as five update intervals")."""

import pytest

from repro.experiments.driver import FlowDriver
from repro.sim.engine import Simulator
from repro.sim.tracing import CounterRateProbe, Probe
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.units import GBPS, MSEC, USEC


def run_perturbation():
    """A long flow in steady state; a second flow joins, then leaves."""
    sim = Simulator()
    net = build_dumbbell(
        sim,
        DumbbellParams(
            left_hosts=2,
            right_hosts=1,
            host_bw_bps=10 * GBPS,
            bottleneck_bw_bps=10 * GBPS,
        ),
    )
    driver = FlowDriver(net, "powertcp")
    long_flow = driver.start_flow(0, 2, 10 ** 11, at_ns=0)
    # The perturbing flow: joins at 2 ms, carries 1 ms of traffic.
    perturber = driver.start_flow(1, 2, 600_000, at_ns=2 * MSEC)
    probe = CounterRateProbe(
        sim, 50 * USEC, lambda: long_flow.bytes_received
    ).start()
    qprobe = Probe(sim, 50 * USEC, lambda: net.port("bottleneck").qlen_bytes).start()
    driver.run(until_ns=8 * MSEC)
    return net, long_flow, perturber, probe, qprobe


def test_long_flow_halves_then_recovers():
    net, long_flow, perturber, probe, qprobe = run_perturbation()
    assert perturber.completed

    def window_mean(start_ns, end_ns):
        vals = [
            r
            for t, r in zip(probe.times_ns, probe.rates_bps)
            if start_ns <= t < end_ns
        ]
        return sum(vals) / len(vals)

    before = window_mean(1 * MSEC, 2 * MSEC)
    during = window_mean(2.3 * MSEC, 2.8 * MSEC)
    after = window_mean(perturber.finish_ns + 500 * USEC, 8 * MSEC)
    assert before > 0.9 * 10e9  # full line before
    assert during < 0.7 * before  # gave bandwidth to the joiner
    assert after > 0.9 * before  # recovered the full rate


def test_recovery_within_tens_of_rtts():
    """After the perturber leaves, the long flow must be back above 90 %
    of line rate within ~20 base RTTs (Theorem 2's fast convergence; the
    fluid bound is ~5 update intervals, packetization adds slack)."""
    net, long_flow, perturber, probe, qprobe = run_perturbation()
    leave = perturber.finish_ns
    deadline = leave + 20 * net.base_rtt_ns
    recovered = [
        t
        for t, r in zip(probe.times_ns, probe.rates_bps)
        if t > leave and r > 9e9
    ]
    assert recovered, "never recovered"
    assert recovered[0] <= deadline


def test_queue_returns_to_near_zero_after_perturbation():
    net, long_flow, perturber, probe, qprobe = run_perturbation()
    tail = [
        q
        for t, q in zip(qprobe.times_ns, qprobe.values)
        if t > perturber.finish_ns + 1 * MSEC
    ]
    assert sum(tail) / len(tail) < 5_000  # a few KB at most

"""Fig. 6/7 integration: scaled web-search workload, relative FCT claims.

These use small flow counts (CI budget), so assertions target robust
orderings (long-flow tails, buffer occupancy) rather than exact tail
percentiles; the full sweep lives in ``benchmarks/``.
"""

import pytest

from repro.analysis.stats import percentile
from repro.experiments.websearch import WebsearchConfig, run_websearch
from repro.units import MSEC

SCALE = 1 / 16


def run(algo, load=0.6, flows=400, **kwargs):
    return run_websearch(
        WebsearchConfig(
            algorithm=algo,
            load=load,
            duration_ns=20 * MSEC,
            drain_ns=30 * MSEC,
            size_scale=SCALE,
            max_flows=flows,
            **kwargs,
        )
    )


@pytest.fixture(scope="module")
def at60():
    return {algo: run(algo) for algo in ("powertcp", "hpcc")}


def test_all_flows_complete(at60):
    for algo, result in at60.items():
        unfinished = [f for f in result.flows if not f.completed]
        assert not unfinished, f"{algo}: {len(unfinished)} unfinished"


def test_slowdowns_at_least_one(at60):
    for algo, result in at60.items():
        summary = result.fct_summary(pct=0)  # the minimum slowdown
        assert summary.overall >= 1.0, algo


def test_powertcp_beats_hpcc_on_long_flows(at60):
    power = at60["powertcp"].fct_summary(pct=99)
    hpcc = at60["hpcc"].fct_summary(pct=99)
    assert power.long <= hpcc.long * 1.05


def test_powertcp_short_flows_competitive(at60):
    power = at60["powertcp"].fct_summary(pct=99)
    hpcc = at60["hpcc"].fct_summary(pct=99)
    assert power.short <= hpcc.short * 1.2


def test_buffer_occupancy_tail_lower_for_powertcp(at60):
    power_tail = percentile(at60["powertcp"].buffer_samples_bytes, 99)
    hpcc_tail = percentile(at60["hpcc"].buffer_samples_bytes, 99)
    # Fig. 7g: PowerTCP cuts the tail buffer occupancy vs HPCC.
    assert power_tail <= hpcc_tail


def test_size_bins_cover_all_completed_flows(at60):
    result = at60["powertcp"]
    bins = result.size_bins(pct=50)
    binned = sum(count for _, _, count in bins)
    completed = sum(1 for f in result.flows if f.completed)
    assert binned == completed


def test_load_increases_slowdown():
    low = run("powertcp", load=0.2, flows=200)
    high = run("powertcp", load=0.8, flows=200)
    s_low = low.fct_summary(pct=90)
    s_high = high.fct_summary(pct=90)
    assert s_high.overall >= s_low.overall

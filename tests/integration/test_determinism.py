"""Determinism: identical seeds must give bit-identical runs.

Reproducibility is a stated goal of the paper's artifact ("in order to
ensure reproducibility... we will make all our artefacts publicly
available"); for a simulator that means the event order, and therefore
every metric, is a pure function of the configuration and seed.
"""

from repro.experiments.incast import IncastConfig, run_incast
from repro.experiments.websearch import WebsearchConfig, run_websearch
from repro.sim.engine import Simulator
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.experiments.driver import FlowDriver
from repro.units import GBPS, MSEC


def test_incast_runs_are_bit_identical():
    a = run_incast(IncastConfig(algorithm="powertcp", fanout=6, duration_ns=2 * MSEC))
    b = run_incast(IncastConfig(algorithm="powertcp", fanout=6, duration_ns=2 * MSEC))
    assert a.qlen_bytes == b.qlen_bytes
    assert a.throughput_bps == b.throughput_bps
    assert a.burst_fcts_ns == b.burst_fcts_ns


def test_websearch_event_counts_identical():
    def run():
        return run_websearch(
            WebsearchConfig(
                algorithm="hpcc",
                load=0.4,
                duration_ns=3 * MSEC,
                drain_ns=8 * MSEC,
                size_scale=1 / 16,
                max_flows=30,
                seed=11,
            )
        )

    a, b = run(), run()
    assert [f.fct_ns for f in a.flows] == [f.fct_ns for f in b.flows]
    assert a.buffer_samples_bytes == b.buffer_samples_bytes


def test_event_count_is_deterministic():
    def run():
        sim = Simulator()
        net = build_dumbbell(
            sim,
            DumbbellParams(left_hosts=3, right_hosts=1, host_bw_bps=10 * GBPS,
                           bottleneck_bw_bps=10 * GBPS),
        )
        driver = FlowDriver(net, "dcqcn")  # timers + RNG marking: worst case
        for i in range(3):
            driver.start_flow(i, 3, 200_000, at_ns=0)
        driver.run(until_ns=10 * MSEC)
        return sim.events_processed

    assert run() == run()


def test_different_seeds_differ():
    a = run_websearch(
        WebsearchConfig(algorithm="powertcp", load=0.4, duration_ns=3 * MSEC,
                        drain_ns=8 * MSEC, size_scale=1 / 16, max_flows=30,
                        seed=1)
    )
    b = run_websearch(
        WebsearchConfig(algorithm="powertcp", load=0.4, duration_ns=3 * MSEC,
                        drain_ns=8 * MSEC, size_scale=1 / 16, max_flows=30,
                        seed=2)
    )
    assert [f.size_bytes for f in a.flows] != [f.size_bytes for f in b.flows]

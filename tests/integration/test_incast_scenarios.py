"""Fig. 4 integration: the paper's qualitative incast claims, asserted.

Scaled-down fan-ins (pure-Python event budget) — the *relative* behaviour
between algorithms is what the paper's figure shows and what we assert.
"""

import pytest

from repro.experiments.incast import IncastConfig, run_incast
from repro.units import MSEC


@pytest.fixture(scope="module")
def results():
    algos = ["powertcp", "theta-powertcp", "hpcc", "timely", "homa"]
    return {
        algo: run_incast(IncastConfig(algorithm=algo, fanout=10))
        for algo in algos
    }


def test_all_algorithms_complete_the_burst(results):
    for algo in ("powertcp", "theta-powertcp", "hpcc", "homa"):
        assert len(results[algo].burst_fcts_ns) == 10, algo


def test_no_losses_at_10_to_1(results):
    for algo, result in results.items():
        assert result.drops == 0, algo


def test_powertcp_converges_to_near_zero_queue(results):
    r = results["powertcp"]
    # Average standing queue in the settled second half under 2 MTU.
    assert r.mean_late_qlen() < 2_000


def test_timely_does_not_control_queue(results):
    # TIMELY's standing queue is at least an order of magnitude above
    # PowerTCP's (paper: "TIMELY does not control the queue-lengths").
    assert results["timely"].mean_late_qlen() > 10 * max(
        results["powertcp"].mean_late_qlen(), 100.0
    )


def test_powertcp_sustains_throughput_through_burst(results):
    assert results["powertcp"].burst_utilization() > 0.95


def test_powertcp_beats_hpcc_on_burst_utilization(results):
    # HPCC "loses throughput after mitigating the incast" (Fig. 4d).
    assert (
        results["powertcp"].burst_utilization()
        >= results["hpcc"].burst_utilization()
    )


def test_timely_loses_most_throughput(results):
    assert results["timely"].burst_utilization() < 0.7


def test_queue_peaks_are_bounded_by_first_rtt_burst(results):
    # All window-based schemes start at line rate, so the peak is at most
    # ~fanout x BDP plus the long flow's contribution.
    bdp_burst = 11 * 20_000  # 11 senders x ~BDP at 10 Gbps / ~15 us
    assert results["powertcp"].peak_qlen_bytes < 2 * bdp_burst


def test_large_fanout_homa_parks_standing_queue():
    homa = run_incast(
        IncastConfig(
            algorithm="homa", fanout=40, burst_bytes=100_000, duration_ns=6 * MSEC
        )
    )
    power = run_incast(
        IncastConfig(
            algorithm="powertcp",
            fanout=40,
            burst_bytes=100_000,
            duration_ns=6 * MSEC,
        )
    )
    # HOMA's unscheduled blast is uncontrolled; PowerTCP's senders react
    # to the telemetry within an RTT, keeping drain smoother.  Both should
    # complete; HOMA must not beat PowerTCP on peak queue here.
    assert len(homa.burst_fcts_ns) == 40
    assert len(power.burst_fcts_ns) == 40

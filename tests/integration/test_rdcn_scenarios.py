"""Fig. 8 integration: the RDCN case study's qualitative claims."""

import pytest

from repro.experiments.rdcn import (
    RdcnConfig,
    run_rdcn,
    scaled_prebuffer_ns,
    scaled_rdcn,
)
from repro.units import MSEC, USEC


@pytest.fixture(scope="module")
def results():
    params = scaled_rdcn()
    out = {}
    for algo, paper_pre in (
        ("powertcp", 0),
        ("hpcc", 0),
        ("retcp", 600 * USEC),
    ):
        pre = scaled_prebuffer_ns(params, paper_pre) if paper_pre else 0
        out[(algo, paper_pre)] = run_rdcn(
            RdcnConfig(
                algorithm=algo,
                params=scaled_rdcn(),
                prebuffer_ns=pre,
                duration_ns=4 * MSEC,
            )
        )
    return out


def test_powertcp_circuit_utilization_in_paper_band(results):
    # Paper: 80-85% circuit utilization for PowerTCP.
    util = results[("powertcp", 0)].circuit_utilization
    assert 0.75 <= util <= 1.0


def test_hpcc_underutilizes_circuit(results):
    # Fig. 8a: "HPCC maintains low queue lengths but does not fill the
    # available bandwidth".
    assert (
        results[("hpcc", 0)].circuit_utilization
        < results[("powertcp", 0)].circuit_utilization
    )


def test_retcp_fills_circuit_but_pays_latency(results):
    retcp = results[("retcp", 600 * USEC)]
    power = results[("powertcp", 0)]
    assert retcp.circuit_utilization > 0.9
    # Paper: PowerTCP improves tail queuing latency at least 5x vs reTCP;
    # at this scale we assert the robust ordering (>= 2x) and record the
    # measured factor in EXPERIMENTS.md.
    assert retcp.tail_queuing_latency_ns > 2 * power.tail_queuing_latency_ns


def test_powertcp_keeps_voq_near_zero(results):
    power = results[("powertcp", 0)]
    retcp = results[("retcp", 600 * USEC)]
    assert power.peak_voq_bytes() < 0.05 * retcp.peak_voq_bytes()


def test_throughput_series_shows_circuit_days(results):
    power = results[("powertcp", 0)]
    # During days the pair exceeds the 25 Gbps packet floor.
    assert max(power.pair_throughput_bps) > 30e9
    assert power.day_windows  # the schedule produced windows


def test_no_drops_in_case_study(results):
    for key, result in results.items():
        assert result.drops == 0, key

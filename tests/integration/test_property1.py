"""Property 1 (paper §3.1): power equals the bandwidth-window product.

We run long flows to steady state on a dumbbell and verify that the power
computed from INT feedback at the bottleneck matches ``b · w(t − t_f)``
— i.e. the measured normalized power equals the aggregate window in BDP
units.  This is the identity the whole control law rests on.
"""

import pytest

from repro.cc.base import StaticWindow
from repro.experiments.driver import FlowDriver
from repro.sim.engine import Simulator
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.units import BITS_PER_BYTE, GBPS, MSEC, SEC


def run_steady_state(num_flows, window_bdp_multiple):
    sim = Simulator()
    net = build_dumbbell(
        sim,
        DumbbellParams(
            left_hosts=num_flows,
            right_hosts=1,
            host_bw_bps=10 * GBPS,
            bottleneck_bw_bps=10 * GBPS,
        ),
    )
    driver = FlowDriver(
        net,
        "static",
        cc_params={"bdp_multiple": window_bdp_multiple / num_flows},
    )
    flows = [
        driver.start_flow(i, num_flows, 10 ** 10, at_ns=0)
        for i in range(num_flows)
    ]
    driver.run(until_ns=3 * MSEC)
    return sim, net, driver, flows


def measured_norm_power(net, driver, flows):
    """Recompute normalized power from two fresh bottleneck INT stamps."""
    from repro.core.power import normalized_power_from_hop

    bottleneck = net.port("bottleneck")
    stamps = []

    real_stamp = bottleneck._stamp_qlen

    # Sample two dequeue events one base-RTT apart via the port counters.
    t0 = (net.sim.now, bottleneck.qlen_bytes, bottleneck.tx_bytes)
    net.sim.run(until=net.sim.now + net.base_rtt_ns)
    t1 = (net.sim.now, bottleneck.qlen_bytes, bottleneck.tx_bytes)

    from repro.sim.packet import HopRecord

    prev = HopRecord(t0[1], t0[0], t0[2], bottleneck.rate_bps, bottleneck.port_id)
    cur = HopRecord(t1[1], t1[0], t1[2], bottleneck.rate_bps, bottleneck.port_id)
    sample = normalized_power_from_hop(cur, prev, net.base_rtt_ns)
    return sample.norm


@pytest.mark.parametrize("num_flows", [1, 2, 4])
def test_power_equals_bandwidth_window_product(num_flows):
    """In steady state with aggregate inflight W, measured power / e must
    be W / BDP (Property 1, normalized form).

    The aggregate *inflight* bytes realize w(t − t_f): with a single flow
    whose NIC rate equals the bottleneck rate, ACK clocking caps inflight
    below the configured window, and power tracks the realized value —
    exactly what Property 1 states.
    """
    window_multiple = 1.5  # aggregate window of 1.5 BDP: standing queue
    sim, net, driver, flows = run_steady_state(num_flows, window_multiple)
    norm = measured_norm_power(net, driver, flows)

    wire_factor = 1048 / 1000  # header overhead on MTU segments
    aggregate_inflight = sum(
        driver.senders[f.flow_id].inflight for f in flows
    )
    bdp = net.host_bw_bps * net.base_rtt_ns / (BITS_PER_BYTE * SEC)
    expected = aggregate_inflight * wire_factor / bdp
    assert norm == pytest.approx(expected, rel=0.15)


def test_power_one_when_window_equals_bdp():
    sim, net, driver, flows = run_steady_state(2, 1.0)
    norm = measured_norm_power(net, driver, flows)
    assert norm == pytest.approx(1.0, rel=0.15)


def test_underutilized_pipe_power_below_one():
    sim, net, driver, flows = run_steady_state(2, 0.5)
    norm = measured_norm_power(net, driver, flows)
    assert norm == pytest.approx(0.5, rel=0.2)

"""Tests for the topology registry and the Network introspection surface."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.topology import registry as topo_registry
from repro.topology.registry import (
    build_topology,
    get_topology,
    make_topology_params,
    register_topology,
    topology_names,
)

#: tiny build overrides per topology (keep the round-trip sub-second)
TINY_PARAMS = {
    "dumbbell": dict(left_hosts=3, right_hosts=2),
    "fattree": dict(
        num_pods=2, tors_per_pod=2, aggs_per_pod=1, num_cores=1,
        hosts_per_tor=2,
    ),
    "parkinglot": dict(segments=2),
    "rdcn": dict(num_tors=3, hosts_per_tor=2),
}


def test_all_builtin_topologies_registered():
    assert topology_names() == ["dumbbell", "fattree", "parkinglot", "rdcn"]


def test_unknown_topology_raises_with_catalog():
    with pytest.raises(KeyError, match="dumbbell"):
        get_topology("moebius-strip")


def test_aliases_resolve_to_canonical_names():
    assert get_topology("fat-tree").name == "fattree"
    assert get_topology("fat_tree").name == "fattree"
    assert get_topology("parking-lot").name == "parkinglot"
    assert get_topology("DUMBBELL").name == "dumbbell"


def test_make_params_rejects_unknown_fields():
    with pytest.raises(ValueError, match="no_such_knob"):
        make_topology_params("dumbbell", no_such_knob=1)


def test_make_params_rejects_params_plus_overrides():
    params = make_topology_params("dumbbell", left_hosts=2)
    with pytest.raises(ValueError, match="not both"):
        get_topology("dumbbell").make_params(params, left_hosts=3)


def test_make_params_rejects_wrong_params_type():
    params = make_topology_params("dumbbell")
    with pytest.raises(TypeError, match="FatTreeParams"):
        get_topology("fattree").make_params(params)


def test_register_rejects_duplicate_name():
    entry = get_topology("dumbbell")
    with pytest.raises(ValueError, match="already registered"):
        register_topology("dumbbell", params_cls=type(entry.make_params()))(
            lambda sim, params=None: None
        )


def test_reregistering_same_builder_is_idempotent():
    entry = get_topology("dumbbell")
    register_topology("dumbbell", params_cls=entry.params_cls)(entry.builder)
    assert get_topology("dumbbell").builder is entry.builder


@pytest.mark.parametrize("name", ["dumbbell", "fattree", "parkinglot", "rdcn"])
def test_registry_roundtrip_list_build_introspect(name):
    """list -> build -> introspect: the uniform surface holds everywhere."""
    entry = get_topology(name)
    assert entry.description
    assert entry.param_fields()
    net = build_topology(Simulator(), name, **TINY_PARAMS[name])
    description = net.describe()
    assert description["num_hosts"] == net.num_hosts > 0
    assert description["base_rtt_ns"] == net.base_rtt_ns > 0
    host_ids = [h.host_id for h in net.hosts]
    assert host_ids == sorted(set(host_ids))  # dense, unique
    assert set(net.senders()) <= set(host_ids)
    assert set(net.receivers()) <= set(host_ids)
    # The pairing policy yields the requested number of valid pairs.
    pairs = net.flow_pairs(5, random.Random(7))
    assert len(pairs) == 5
    for src, dst in pairs:
        assert src != dst
        assert src in host_ids and dst in host_ids
    # The declared bottleneck (when any) resolves to a labeled port.
    if description["bottleneck_label"] is not None:
        assert net.bottleneck_port() is net.port(description["bottleneck_label"])
    else:
        assert net.bottleneck_port() is None


def test_dumbbell_introspection_matches_builder_layout():
    net = build_topology(Simulator(), "dumbbell", left_hosts=3, right_hosts=2)
    assert net.senders() == [0, 1, 2]
    assert net.receivers() == [3, 4]
    assert net.shared_bottleneck
    assert net.bottleneck_port().rate_bps > 0
    # Round-robin fallback pairing: distinct senders, no src == dst.
    assert net.flow_pairs(3, None) == [(0, 3), (1, 4), (2, 3)]


def test_parkinglot_bottleneck_is_tightest_segment():
    net = build_topology(
        Simulator(), "parkinglot", segments=3,
        segment_bw_bps=[10e9, 5e9, 10e9],
    )
    assert net.bottleneck_label == "link1"
    assert not net.shared_bottleneck
    # Cross pairs round-robin over segments.
    params = net.extras["params"]
    pairs = net.flow_pairs(4, None)
    assert pairs[0] == (params.cross_src(0), params.cross_dst(0))
    assert pairs[1] == (params.cross_src(1), params.cross_dst(1))
    assert pairs[3] == (params.cross_src(0), params.cross_dst(0))


def test_fattree_pairs_are_seeded_derangements():
    net = build_topology(Simulator(), "fattree", **TINY_PARAMS["fattree"])
    a = net.flow_pairs(8, random.Random(3))
    b = net.flow_pairs(8, random.Random(3))
    c = net.flow_pairs(8, random.Random(4))
    assert a == b  # deterministic in the RNG state
    assert a != c
    # One full permutation: every host exactly once as src and dst.
    assert sorted(src for src, _ in a) == list(range(8))
    assert sorted(dst for _, dst in a) == list(range(8))
    # Counts beyond one permutation keep drawing valid pairs.
    more = net.flow_pairs(11, random.Random(3))
    assert more[:8] == a
    assert all(src != dst for src, dst in more)


def test_flow_pairs_validates_count():
    net = build_topology(Simulator(), "dumbbell", left_hosts=2)
    with pytest.raises(ValueError, match=">= 0"):
        net.flow_pairs(-1, None)


def test_builders_remain_directly_callable():
    """Registration must not wrap the builder functions."""
    from repro.topology.dumbbell import DumbbellParams, build_dumbbell

    net = build_dumbbell(Simulator(), DumbbellParams(left_hosts=2))
    assert net.num_hosts == 3
    assert get_topology("dumbbell").builder is build_dumbbell


def test_registry_loading_is_lazy_and_idempotent():
    topo_registry.load_builtin_topologies()
    before = dict(topo_registry.TOPOLOGIES)
    topo_registry.load_builtin_topologies()
    assert topo_registry.TOPOLOGIES == before

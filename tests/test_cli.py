"""Tests for the figure-regeneration CLI."""

import pytest

from repro.cli import COMMANDS, build_parser, main


def test_all_figures_registered():
    for name in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7g", "fig8",
                 "fig9", "fig10", "fig11"):
        assert name in COMMANDS


def test_list_prints_catalog(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig4" in out and "fig8" in out


def test_parser_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig99"])


def test_fig2_runs(capsys):
    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "Fig 2a" in out
    assert "rtt-gradient" in out


def test_fig3_runs(capsys):
    assert main(["fig3"]) == 0
    out = capsys.readouterr().out
    assert "power" in out


def test_fig4_with_algorithm_filter(capsys):
    assert main(["fig4", "--algorithms", "powertcp", "--duration-ms", "2"]) == 0
    out = capsys.readouterr().out
    assert "powertcp" in out
    assert "hpcc" not in out

"""Tests for the figure-regeneration CLI."""

import pytest

from repro.cli import COMMANDS, build_parser, main


def test_all_figures_registered():
    for name in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7g", "fig8",
                 "fig9", "fig10", "fig11"):
        assert name in COMMANDS


def test_list_prints_catalog(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig4" in out and "fig8" in out


def test_parser_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig99"])


def test_fig2_runs(capsys):
    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "Fig 2a" in out
    assert "rtt-gradient" in out


def test_fig3_runs(capsys):
    assert main(["fig3"]) == 0
    out = capsys.readouterr().out
    assert "power" in out


def test_fig4_with_algorithm_filter(capsys):
    assert main(["fig4", "--algorithms", "powertcp", "--duration-ms", "2"]) == 0
    out = capsys.readouterr().out
    assert "powertcp" in out
    assert "hpcc" not in out


def test_list_prints_scenarios_and_fields(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "websearch" in out and "incast" in out
    assert "fields:" in out


def test_list_prints_every_scenario_and_cc_name(capsys):
    from repro.cc.registry import algorithm_names
    from repro.scenarios import scenario_names

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out
    for name in algorithm_names():
        assert name in out
    assert "aliases: powertcp-int" in out


def test_run_subcommand_prints_metrics(capsys):
    assert main(["run", "incast", "--tiny", "--set", "fanout=3"]) == 0
    out = capsys.readouterr().out
    assert "scenario=incast" in out
    assert "burst_utilization" in out
    assert "events_processed" in out


def test_run_subcommand_json_output(capsys):
    import json

    assert main(["run", "fairness", "--tiny", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["scenario"] == "fairness"
    assert "metrics" in doc and "provenance" in doc


def test_run_rejects_unknown_override():
    with pytest.raises(SystemExit, match="bogus_knob"):
        main(["run", "incast", "--tiny", "--set", "bogus_knob=1"])


def test_sweep_rejects_unknown_axis():
    with pytest.raises(SystemExit, match="bogus_axis"):
        main(["sweep", "incast", "--tiny", "--grid", "bogus_axis=1,2"])


def test_sweep_subcommand_writes_json(tmp_path, capsys):
    import json

    out_path = tmp_path / "sweep.json"
    assert main([
        "sweep", "incast", "--tiny", "--algorithms", "powertcp",
        "--grid", "fanout=2,3", "--out", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "fanout=2" in out and "fanout=3" in out
    doc = json.loads(out_path.read_text())
    assert len(doc["cells"]) == 2


def test_sweep_requires_an_axis():
    with pytest.raises(SystemExit):
        main(["sweep", "incast"])


def test_sweep_incremental_reuse_and_force(tmp_path, capsys):
    out_path = str(tmp_path / "sweep.json")
    args = ["sweep", "incast", "--tiny", "--grid", "fanout=2",
            "--out", out_path]
    assert main(args) == 0
    assert "reused" not in capsys.readouterr().out
    # Second run hits the cache; --force re-simulates.
    assert main(args) == 0
    assert "reused 1 cached" in capsys.readouterr().out
    assert main(args + ["--force"]) == 0
    assert "reused" not in capsys.readouterr().out


def test_sweep_force_keeps_unrelated_cached_cells(tmp_path, capsys):
    import json

    out_path = str(tmp_path / "sweep.json")
    wide = ["sweep", "incast", "--tiny", "--grid", "fanout=2,3",
            "--out", out_path]
    assert main(wide) == 0
    # --force on a narrower grid refreshes its cells but must not purge
    # the fanout=3 result persisted by the wider sweep.
    narrow = ["sweep", "incast", "--tiny", "--grid", "fanout=2",
              "--out", out_path, "--force"]
    assert main(narrow) == 0
    capsys.readouterr()
    doc = json.loads(open(out_path).read())
    assert sorted(c["params"]["fanout"] for c in doc["cells"]) == [2, 3]


def test_coexistence_sweep_roundtrip(tmp_path, capsys):
    import json

    out_path = tmp_path / "coexistence.json"
    args = [
        "sweep", "coexistence", "--tiny",
        "--grid", "algorithm_b=dcqcn,timely", "--out", str(out_path),
    ]
    assert main(args) == 0
    doc = json.loads(out_path.read_text())
    assert len(doc["cells"]) == 2
    first = {c["params"]["algorithm_b"]: c["metrics"] for c in doc["cells"]}
    # Deterministic per-cell results: a re-run reproduces the metrics.
    assert main(args + ["--force"]) == 0
    doc2 = json.loads(out_path.read_text())
    second = {c["params"]["algorithm_b"]: c["metrics"] for c in doc2["cells"]}
    assert first == second

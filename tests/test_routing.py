"""Routing-layer tests: registry, class swap, policies, spray transport.

Covers the contracts the routing refactor introduced:

* registry resolution (aliases, unknown names/params fail loudly);
* the default-ECMP class swap (``_EcmpSwitch``) that keeps committed
  figure series byte-identical, and its equivalence to the registered
  ``ecmp`` policy object;
* per-policy determinism (fixed seed => identical per-port bytes);
* WRR / least-loaded assignment arithmetic and flow pinning;
* spray + reorder-tolerant receiver end-to-end delivery (all bytes
  ACKed, zero retransmissions on an uncongested fabric);
* the lb_matrix scenario separating the policies' fabric metrics;
* the HOMA x spray incompatibility error.
"""

import dataclasses

import pytest

from repro.experiments.driver import FlowDriver
from repro.routing import (
    POLICIES,
    Requirements,
    get_policy,
    load_builtin_policies,
    make_policy,
    policy_names,
)
from repro.routing.ecmp import EcmpPolicy
from repro.routing.leastloaded import LeastLoadedPolicy
from repro.routing.spray import SprayPolicy
from repro.routing.wrr import WeightedRoundRobinPolicy
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.packet import Packet
from repro.sim.port import EgressPort
from repro.sim.switch import RoutingError, Switch, _EcmpSwitch, ecmp_index
from repro.topology.registry import build_topology, make_topology_params
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.units import GBPS, MSEC

ALL_POLICIES = ("ecmp", "wrr", "least-loaded", "spray")


def tiny_fattree(**overrides):
    return make_topology_params(
        "fattree",
        num_pods=2,
        tors_per_pod=2,
        aggs_per_pod=2,
        num_cores=2,
        hosts_per_tor=2,
        host_bw_bps=10 * GBPS,
        fabric_bw_bps=10 * GBPS,
        **overrides,
    )


def run_cross_pod_flows(params, flow_bytes=40_000, flows=4, horizon=20 * MSEC):
    """A few cross-pod flows; returns (net, driver)."""
    sim = Simulator()
    net = build_topology(sim, "fattree", params)
    driver = FlowDriver(net, "powertcp")
    half = net.num_hosts // 2
    for i in range(flows):
        driver.start_flow(i % half, half + (i % half), flow_bytes, at_ns=0)
    driver.run(until_ns=horizon)
    return net, driver


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_catalog_lists_builtins():
    load_builtin_policies()
    assert set(ALL_POLICIES) <= set(policy_names())


def test_unknown_policy_raises_with_catalog():
    with pytest.raises(KeyError, match="ecmp"):
        get_policy("nope")


def test_aliases_resolve():
    assert get_policy("packet-spray").name == "spray"
    assert get_policy("wlc").name == "least-loaded"
    assert get_policy("hash").name == "ecmp"


def test_unknown_param_raises_typeerror():
    with pytest.raises(TypeError, match="bogus"):
        make_policy("wrr", bogus=1)


def test_bad_param_values_raise():
    with pytest.raises(ValueError, match="weights"):
        make_policy("wrr", weights=(0,)).create()
    with pytest.raises(ValueError, match="metric"):
        make_policy("least-loaded", metric="entropy").create()
    with pytest.raises(ValueError, match="mode"):
        make_policy("spray", mode="chaos").create()


def test_requirements_union():
    spray = get_policy("spray").requirements
    ecmp = get_policy("ecmp").requirements
    union = Requirements.union([spray, ecmp])
    assert union.reordering_tolerant_receiver
    assert not union.flow_stable
    empty = Requirements.union([])
    assert not empty.reordering_tolerant_receiver
    assert empty.flow_stable


def test_spec_create_returns_fresh_instances():
    spec = make_policy("wrr")
    a, b = spec.create(), spec.create()
    assert a is not b


# ----------------------------------------------------------------------
# class swap (the byte-identity fast path)
# ----------------------------------------------------------------------
def test_default_switch_is_ecmp_fast_path():
    sim = Simulator()
    assert type(Switch(sim, 1)) is _EcmpSwitch
    assert type(Switch(sim, 1, policy=EcmpPolicy())) is Switch


def test_default_fattree_switches_use_fast_path():
    sim = Simulator()
    net = build_topology(sim, "fattree", tiny_fattree())
    assert all(type(s) is _EcmpSwitch for s in net.switches)
    assert net.routing_name == "ecmp"
    assert net.routing_params == {}
    assert net.describe()["routing"] == "ecmp"


def test_set_policy_swaps_classes_both_ways():
    sim = Simulator()
    switch = Switch(sim, 1)
    assert type(switch) is _EcmpSwitch
    switch.set_policy(SprayPolicy())
    assert type(switch) is Switch
    assert switch.policy is not None
    switch.set_policy(None)
    assert type(switch) is _EcmpSwitch
    assert switch.policy is None


def test_policy_instances_are_per_switch():
    sim = Simulator()
    policy = EcmpPolicy()
    Switch(sim, 1, policy=policy)
    with pytest.raises(ValueError, match="per-switch"):
        Switch(sim, 2, policy=policy)


# ----------------------------------------------------------------------
# routing errors (bugfix: bare KeyError(dst))
# ----------------------------------------------------------------------
def test_unknown_destination_names_switch_and_routes():
    sim = Simulator()
    for policy in (None, EcmpPolicy()):
        switch = Switch(sim, 7, "leaf", policy=policy)
        port = switch.add_port(EgressPort(sim, GBPS, 100))
        switch.set_route(1, (port,))
        switch.set_route(2, (port,))
        with pytest.raises(RoutingError) as err:
            switch.receive(Packet.data(5, 0, 99, 0, 100))
        assert isinstance(err.value, KeyError)  # backcompat
        assert "leaf" in str(err.value)
        assert "99" in str(err.value)
        assert err.value.known_destinations == (1, 2)


# ----------------------------------------------------------------------
# policy arithmetic
# ----------------------------------------------------------------------
def test_ecmp_policy_matches_inline_arithmetic():
    sim = Simulator()
    plain = Switch(sim, 3)
    routed = Switch(sim, 3, policy=EcmpPolicy())
    for switch in (plain, routed):
        ports = [switch.add_port(EgressPort(sim, GBPS, 100)) for _ in range(4)]
        switch.set_route(9, tuple(ports))
    for flow in range(64):
        pkt = Packet.data(flow, 0, 9, 0, 100)
        assert plain.ports.index(plain.route_for(pkt)) == routed.ports.index(
            routed.route_for(pkt)
        )
        assert plain.ports.index(plain.route_for(pkt)) == ecmp_index(
            flow, 3, 4
        )


def test_ecmp_salt_changes_mapping():
    picks = [ecmp_index(f, 1, 4) for f in range(32)]
    salted = [ecmp_index(f, 1, 4, salt=7) for f in range(32)]
    assert picks != salted


def test_wrr_weighted_deal_and_pinning():
    policy = WeightedRoundRobinPolicy(weights=(3, 1))
    options = ("up0", "up1")
    picks = [
        policy.select(Packet.data(flow, 0, 9, 0, 100), options)
        for flow in range(1, 9)
    ]
    # deal order with credits 3/1: flows 1-3 -> up0, 4 -> up1, 5-7 -> up0, 8 -> up1
    assert picks.count("up0") == 6
    assert picks.count("up1") == 2
    # pinned: a later packet of flow 4 keeps its port
    assert policy.select(Packet.data(4, 0, 9, 1000, 100), options) == picks[3]


class _StubPort:
    _next = 0

    def __init__(self, qlen=0):
        _StubPort._next += 1
        self.port_id = _StubPort._next
        self.qlen_bytes = qlen


def test_least_loaded_pins_to_emptiest_counter():
    policy = LeastLoadedPolicy()
    options = tuple(_StubPort() for _ in range(3))
    picks = [
        policy.select(Packet.data(flow, 0, 9, 0, 100), options)
        for flow in range(5)
    ]
    counts = [picks.count(p) for p in options]
    assert counts == [2, 2, 1]  # round-robin via the connections counter
    assert policy.select(Packet.data(0, 0, 9, 1000, 100), options) is picks[0]


def test_least_loaded_qlen_metric_avoids_hot_port():
    policy = LeastLoadedPolicy(metric="qlen")
    hot, cold = _StubPort(qlen=50_000), _StubPort(qlen=0)
    pick = policy.select(Packet.data(1, 0, 9, 0, 100), (hot, cold))
    assert pick is cold


def test_spray_rotates_per_packet():
    policy = SprayPolicy()
    options = ("a", "b", "c")
    pkt = Packet.data(1, 0, 9, 0, 100)
    picks = [policy.select(pkt, options) for _ in range(6)]
    assert picks == ["a", "b", "c", "a", "b", "c"]


def test_spray_random_mode_is_seed_deterministic():
    class _Sw:
        switch_id = 5
        name = "s5"

    draws = []
    for _ in range(2):
        policy = SprayPolicy(mode="random", seed=3)
        policy.attach(_Sw())
        pkt = Packet.data(1, 0, 9, 0, 100)
        draws.append([policy.select(pkt, ("a", "b", "c")) for _ in range(16)])
    assert draws[0] == draws[1]
    assert len(set(draws[0])) > 1


# ----------------------------------------------------------------------
# determinism regression: fixed seed => identical per-port byte counts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("routing", ALL_POLICIES)
def test_policy_runs_are_deterministic(routing):
    def per_port_tx():
        net, _ = run_cross_pod_flows(
            tiny_fattree(routing=routing), flow_bytes=20_000
        )
        return [
            (s.name, p.name, p.tx_bytes)
            for s in net.switches
            for p in s.ports
        ]

    assert per_port_tx() == per_port_tx()


# ----------------------------------------------------------------------
# spray end-to-end: reordering tolerated, no spurious retransmissions
# ----------------------------------------------------------------------
def test_spray_delivers_all_bytes_without_retransmissions():
    net, driver = run_cross_pod_flows(
        tiny_fattree(routing="spray"), flow_bytes=60_000
    )
    assert net.routing_requirements().reordering_tolerant_receiver
    for flow in driver.flows:
        assert flow.completed
        assert flow.bytes_received == flow.size_bytes
        assert flow.retransmissions == 0
    assert net.total_drops() == 0


def test_reorder_tolerant_receiver_buffers_gap():
    sim = Simulator()
    host = Host(sim, 1)

    class _Sink:
        def receive(self, pkt):
            pass

    host.attach_nic(EgressPort(sim, GBPS, 100, peer=_Sink()))
    flow = Flow(5, 0, 1, 3000)
    receiver = Receiver(sim, host, flow, reorder_tolerant=True)
    receiver.start()
    # segments 2 and 3 arrive before segment 1
    receiver.on_packet(Packet.data(5, 0, 1, 1000, 1000))
    receiver.on_packet(Packet.data(5, 0, 1, 2000, 1000))
    assert receiver.rcv_nxt == 0
    assert receiver.out_of_order == 2
    receiver.on_packet(Packet.data(5, 0, 1, 0, 1000))
    assert receiver.rcv_nxt == 3000  # gap filled: cumulative ACK jumps
    assert flow.bytes_received == 3000
    assert flow.finish_ns is not None


def test_go_back_n_receiver_still_discards_gaps():
    sim = Simulator()
    host = Host(sim, 1)

    class _Sink:
        def receive(self, pkt):
            pass

    host.attach_nic(EgressPort(sim, GBPS, 100, peer=_Sink()))
    flow = Flow(5, 0, 1, 3000)
    receiver = Receiver(sim, host, flow)
    receiver.start()
    receiver.on_packet(Packet.data(5, 0, 1, 1000, 1000))
    receiver.on_packet(Packet.data(5, 0, 1, 0, 1000))
    assert receiver.rcv_nxt == 1000  # the buffered-jump never happens


# ----------------------------------------------------------------------
# lb_matrix scenario
# ----------------------------------------------------------------------
def test_lb_matrix_separates_policies():
    from repro.scenarios import get_scenario

    scenario = get_scenario("lb_matrix")
    signatures = {}
    for routing in ("ecmp", "least-loaded", "spray"):
        result = scenario.run(
            **{**scenario.tiny_overrides(), "routing": routing}
        )
        metrics = result.metrics
        assert metrics["completed"] == metrics["total_flows"]
        signatures[routing] = (
            metrics["uplink_imbalance"],
            metrics["hotspot_peak_qlen_bytes"],
        )
        if routing == "spray":
            assert metrics["reorder_events"] > 0
            assert metrics["retransmissions"] == 0
        else:
            assert metrics["reorder_events"] == 0
    assert len(set(signatures.values())) == 3


def test_lb_matrix_does_not_mutate_shared_params():
    from repro.experiments.lbmatrix import LbMatrixConfig, run_lb_matrix

    base = tiny_fattree()
    frozen = dataclasses.replace(base)
    config = LbMatrixConfig(
        routing="spray",
        params=base,
        flow_bytes=20_000,
        duration_ns=1 * MSEC,
        drain_ns=2 * MSEC,
    )
    run_lb_matrix(config)
    assert base == frozen  # dataclasses.replace, never in-place mutation


# ----------------------------------------------------------------------
# HOMA x spray
# ----------------------------------------------------------------------
def test_homa_rejects_spraying_network():
    sim = Simulator()
    net = build_topology(sim, "fattree", tiny_fattree(routing="spray"))
    driver = FlowDriver(net, "homa")
    driver.start_flow(0, net.num_hosts - 1, 10_000, at_ns=0)
    with pytest.raises(ValueError, match="spray"):
        driver.run(until_ns=1 * MSEC)

"""Unit tests for the baseline CC algorithms (HPCC, DCQCN, TIMELY, Swift,
DCTCP) against a stub sender."""

import pytest

from repro.cc.base import AckFeedback
from repro.cc.dcqcn import Dcqcn
from repro.cc.dctcp import Dctcp
from repro.cc.hpcc import Hpcc
from repro.cc.swift import Swift
from repro.cc.timely import Timely
from repro.sim.engine import Simulator
from repro.sim.packet import HopRecord
from repro.units import GBPS, USEC

TAU = 20 * USEC
HOST_BW = 100 * GBPS
BDP = 250_000.0


class StubSender:
    def __init__(self):
        self.sim = Simulator()
        self.base_rtt_ns = TAU
        self.host_bw_bps = HOST_BW
        self.mtu_payload = 1000
        self.cwnd = 0.0
        self.pacing_rate_bps = 0.0
        self.done = False


def hop(qlen, ts, tx, port=1):
    return HopRecord(qlen, ts, tx, HOST_BW, port)


def int_ack(hops, ack_seq=0, sent_high=0):
    return AckFeedback(ack_seq=ack_seq, int_hops=hops, sent_high=sent_high)


def plain_ack(seq=0, marked=False, rtt=None, newly=0, sent_high=0):
    return AckFeedback(ack_seq=seq, ecn_marked=marked, rtt_ns=rtt,
                       newly_acked_bytes=newly, sent_high=sent_high)


# ----------------------------------------------------------------------
# HPCC
# ----------------------------------------------------------------------
def test_hpcc_starts_at_line_rate():
    cc, sender = Hpcc(), StubSender()
    cc.on_start(sender)
    assert sender.cwnd == pytest.approx(BDP)


def test_hpcc_decreases_on_overutilization():
    cc, sender = Hpcc(), StubSender()
    cc.on_start(sender)
    cc.on_ack(sender, int_ack([hop(0, 0, 0)]))
    # Full-rate tx plus a standing queue of 0.5 BDP: U ~ 1.5 > eta.
    congested = hop(125_000, TAU, int(12.5e9 * TAU / 1e9))
    w0 = sender.cwnd
    cc.on_ack(sender, int_ack([congested], ack_seq=1000))
    assert sender.cwnd < w0
    assert cc.utilization_estimate > cc.eta


def test_hpcc_additive_stage_below_eta():
    cc, sender = Hpcc(max_stage=5), StubSender()
    cc.on_start(sender)
    cc.on_ack(sender, int_ack([hop(0, 0, 0)], sent_high=10_000))
    # Half utilization, no queue: U ~ 0.5 < eta -> additive increase.
    w0 = sender.cwnd
    half = hop(0, TAU, int(6.25e9 * TAU / 1e9))
    cc.on_ack(sender, int_ack([half], ack_seq=1000))
    assert sender.cwnd == pytest.approx(w0 + cc._w_ai, rel=1e-6)
    assert cc._inc_stage == 1


def test_hpcc_mi_after_max_stage():
    cc, sender = Hpcc(max_stage=2), StubSender()
    cc.on_start(sender)
    cc.on_ack(sender, int_ack([hop(0, 0, 0)]))
    half_rate = int(6.25e9 * TAU / 1e9)
    for i in range(1, 4):
        cc.on_ack(
            sender,
            int_ack([hop(0, i * TAU, i * half_rate)], ack_seq=i * 10_000 - 1,
                    sent_high=i * 10_000),
        )
    # After two additive stages the third update is multiplicative: with
    # U ~ 0.5 < eta the window must grow by much more than W_ai.
    assert cc._inc_stage == 0  # reset by the MI update
    assert sender.cwnd > BDP * 1.5


def test_hpcc_reference_window_once_per_rtt():
    cc, sender = Hpcc(), StubSender()
    cc.on_start(sender)
    cc.on_ack(sender, int_ack([hop(0, 0, 0)], sent_high=40_000))
    cc.on_ack(sender, int_ack([hop(0, 1_000, 12_500)], ack_seq=1_000,
                              sent_high=40_000))
    wc = cc._w_c
    cc.on_ack(sender, int_ack([hop(0, 2_000, 25_000)], ack_seq=2_000))
    assert cc._w_c == wc  # same RTT: reference unchanged


# ----------------------------------------------------------------------
# DCQCN
# ----------------------------------------------------------------------
def test_dcqcn_cnp_halves_rate_with_alpha():
    cc, sender = Dcqcn(), StubSender()
    cc.on_start(sender)
    r0 = cc.current_rate_bps
    cc.on_cnp(sender)
    assert cc.current_rate_bps == pytest.approx(r0 * 0.5)  # alpha starts at 1


def test_dcqcn_alpha_decays_without_cnp():
    cc, sender = Dcqcn(), StubSender()
    cc.on_start(sender)
    cc.on_cnp(sender)
    alpha_after_cnp = cc._alpha
    sender.sim.run(until=500_000)  # several alpha-timer periods
    assert cc._alpha < alpha_after_cnp


def test_dcqcn_rate_recovers_via_timer():
    cc, sender = Dcqcn(), StubSender()
    cc.on_start(sender)
    cc.on_cnp(sender)
    r_low = cc.current_rate_bps
    sender.sim.run(until=2_000_000)  # many timer periods
    assert cc.current_rate_bps > r_low


def test_dcqcn_byte_counter_drives_increase():
    cc, sender = Dcqcn(byte_counter=10_000), StubSender()
    cc.on_start(sender)
    cc.on_cnp(sender)
    r_low = cc.current_rate_bps
    # 5 byte-counter periods acknowledged at once
    cc.on_ack(sender, plain_ack(seq=50_000, newly=50_000))
    assert cc.current_rate_bps > r_low
    assert cc._byte_stage == 5


def test_dcqcn_ecn_config_scales_with_rate():
    cfg100 = Dcqcn.ecn_config_for(100 * GBPS)
    cfg25 = Dcqcn.ecn_config_for(25 * GBPS)
    assert cfg100.kmin == 4 * cfg25.kmin
    assert cfg100.kmax == 4 * cfg25.kmax


# ----------------------------------------------------------------------
# TIMELY
# ----------------------------------------------------------------------
def run_timely_acks(cc, sender, rtts):
    for i, rtt in enumerate(rtts):
        cc.on_ack(sender, plain_ack(seq=i, rtt=rtt))


def test_timely_gradient_decrease():
    cc, sender = Timely(), StubSender()
    cc.on_start(sender)
    base = int(2 * TAU)  # inside [t_low, t_high]
    run_timely_acks(cc, sender, [base + i * 4_000 for i in range(10)])
    assert cc.rate_bps < HOST_BW  # rising RTTs -> decrease


def test_timely_additive_increase_below_t_low():
    cc, sender = Timely(), StubSender()
    cc.on_start(sender)
    cc._rate = HOST_BW / 2
    run_timely_acks(cc, sender, [TAU] * 5)  # below t_low
    assert cc.rate_bps > HOST_BW / 2


def test_timely_multiplicative_decrease_above_t_high():
    cc, sender = Timely(), StubSender()
    cc.on_start(sender)
    run_timely_acks(cc, sender, [int(20 * TAU)] * 3)
    assert cc.rate_bps < 0.5 * HOST_BW


def test_timely_hai_mode_after_negative_gradients():
    cc, sender = Timely(), StubSender()
    cc.on_start(sender)
    cc._rate = HOST_BW / 4
    base = int(2 * TAU)
    # Falling RTTs inside the gradient band: HAI kicks in after 5.
    run_timely_acks(cc, sender, [base - i * 500 for i in range(8)])
    assert cc._neg_gradient_count >= 5


def test_timely_rate_floor():
    cc, sender = Timely(), StubSender()
    cc.on_start(sender)
    run_timely_acks(cc, sender, [int(100 * TAU)] * 50)
    assert cc.rate_bps >= 0.001 * HOST_BW


# ----------------------------------------------------------------------
# Swift
# ----------------------------------------------------------------------
def test_swift_increases_below_target():
    cc, sender = Swift(), StubSender()
    cc.on_start(sender)
    sender.cwnd = BDP / 2
    w0 = sender.cwnd
    cc.on_ack(sender, plain_ack(rtt=TAU))
    assert sender.cwnd > w0


def test_swift_decreases_above_target_once_per_rtt():
    cc, sender = Swift(), StubSender()
    cc.on_start(sender)
    w0 = sender.cwnd
    cc.on_ack(sender, plain_ack(seq=1, rtt=4 * TAU, sent_high=100_000))
    w1 = sender.cwnd
    assert w1 < w0
    # Second over-target ACK in the same RTT: no further decrease.
    cc.on_ack(sender, plain_ack(seq=2, rtt=4 * TAU, sent_high=100_000))
    assert sender.cwnd == w1


def test_swift_max_mdf_bounds_decrease():
    cc, sender = Swift(max_mdf=0.5), StubSender()
    cc.on_start(sender)
    w0 = sender.cwnd
    cc.on_ack(sender, plain_ack(seq=1, rtt=1000 * TAU))  # absurd delay
    assert sender.cwnd >= 0.5 * w0 - 1


# ----------------------------------------------------------------------
# DCTCP
# ----------------------------------------------------------------------
def test_dctcp_additive_increase_without_marks():
    cc, sender = Dctcp(), StubSender()
    cc.on_start(sender)
    w0 = sender.cwnd
    cc.on_ack(sender, plain_ack(seq=10_000, marked=False, newly=10_000))
    assert sender.cwnd == pytest.approx(w0 + sender.mtu_payload)


def test_dctcp_cuts_by_alpha_fraction():
    cc, sender = Dctcp(g=1.0), StubSender()  # alpha tracks F exactly
    cc.on_start(sender)
    # Close the empty initial window so the next window is [0, 10000).
    cc.on_ack(sender, plain_ack(seq=1, marked=False, sent_high=10_000))
    # Half the window's bytes marked, half clean.
    cc.on_ack(sender, plain_ack(seq=5_000, marked=True, newly=5_000))
    w0 = sender.cwnd
    cc.on_ack(sender, plain_ack(seq=10_000, marked=False, newly=5_000))
    # F = 0.5 over the window -> alpha = 0.5 -> cut by alpha/2 = 25%.
    assert sender.cwnd == pytest.approx(w0 * 0.75, rel=1e-2)


def test_dctcp_ecn_threshold_scales():
    cfg = Dctcp.ecn_config_for(100 * GBPS, TAU)
    assert cfg.kmin == cfg.kmax == int(BDP / 7)

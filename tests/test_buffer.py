"""Unit tests for the Dynamic Thresholds shared buffer."""

import pytest

from repro.sim.buffer import SharedBuffer


def test_empty_buffer_admits():
    buf = SharedBuffer(10_000, alpha=1.0)
    assert buf.admits(qlen=0, size=1000)


def test_threshold_shrinks_as_buffer_fills():
    buf = SharedBuffer(10_000, alpha=1.0)
    t0 = buf.threshold()
    buf.on_enqueue(4_000)
    assert buf.threshold() == t0 - 4_000


def test_dt_admission_rule():
    # alpha=1: a queue may grow while shorter than the remaining free space.
    buf = SharedBuffer(10_000, alpha=1.0)
    buf.on_enqueue(6_000)
    assert buf.admits(qlen=3_999, size=1)  # 3999 < 4000 free
    assert not buf.admits(qlen=4_000, size=1)


def test_never_exceeds_capacity():
    buf = SharedBuffer(2_000, alpha=100.0)  # huge alpha: capacity binds
    buf.on_enqueue(1_500)
    assert not buf.admits(qlen=0, size=600)
    assert buf.admits(qlen=0, size=500)


def test_alpha_scales_aggressiveness():
    small = SharedBuffer(10_000, alpha=0.5)
    large = SharedBuffer(10_000, alpha=2.0)
    # Same state, different thresholds.
    assert small.threshold() == 5_000
    assert large.threshold() == 20_000


def test_enqueue_dequeue_accounting():
    buf = SharedBuffer(10_000)
    buf.on_enqueue(3_000)
    buf.on_enqueue(2_000)
    assert buf.used == 5_000
    buf.on_dequeue(3_000)
    assert buf.used == 2_000
    assert buf.free == 8_000


def test_drop_counting():
    buf = SharedBuffer(1_000)
    buf.on_drop()
    buf.on_drop()
    assert buf.drops == 2


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        SharedBuffer(0)
    with pytest.raises(ValueError):
        SharedBuffer(1000, alpha=0)


def test_total_admitted_tracks_all_traffic():
    buf = SharedBuffer(10_000)
    buf.on_enqueue(1_000)
    buf.on_dequeue(1_000)
    buf.on_enqueue(2_000)
    assert buf.total_admitted == 3_000

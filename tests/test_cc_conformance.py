"""Parametrized conformance suite over every registered CC algorithm.

Three contracts every scheme must honour:

* under a synthetic ACK stream (varying RTT, ECN marks, INT telemetry,
  CNPs), the installed window stays within the scheme's own
  ``window_bounds`` and pacing never exceeds the host line rate;
* the declared :class:`~repro.cc.registry.Requirements` match behaviour —
  INT-requiring schemes fail loudly (``MissingFeedbackError``) when
  acknowledgments carry no telemetry, and schemes that do not declare
  INT run on plain ACKs without raising;
* every registered alias resolves to the same entry as the canonical
  name.

Schemes without a standalone per-flow CC object are exercised where the
contract applies: HOMA has no CC class (receiver-driven) and reTCP needs
a built RDCN (``requires_network``), so neither joins the synthetic-ACK
stream test.
"""

import pytest

from compiled_support import require_compiled
from repro.cc.base import AckFeedback, MissingFeedbackError
from repro.cc.registry import (
    ALGORITHMS,
    get_algorithm,
    load_builtin_algorithms,
    make_algorithm,
)
from repro.sim.engine import Simulator, engine_defaults
from repro.sim.packet import HopRecord
from repro.units import GBPS, USEC


@pytest.fixture(autouse=True, params=["heap", "compiled"])
def _engine(request):
    # The contracts must hold regardless of which event core hosts the
    # sender's simulator; compiled cells skip visibly when unbuilt.
    require_compiled(request.param)
    with engine_defaults(scheduler=request.param):
        yield

MTU = 1000
BASE_RTT_NS = 20 * USEC
HOST_BW = 10 * GBPS


class StubSender:
    """The minimal sender surface the CC contract allows touching."""

    def __init__(self):
        self.sim = Simulator()
        self.base_rtt_ns = BASE_RTT_NS
        self.host_bw_bps = HOST_BW
        self.mtu_payload = MTU
        self.cwnd = 0.0
        self.pacing_rate_bps = 0.0
        self.done = False

    def _try_send(self):
        pass


def all_entries():
    load_builtin_algorithms()
    return sorted(ALGORITHMS.items())


def drivable_names():
    """Schemes with a standalone per-flow CC object."""
    return [
        name
        for name, entry in all_entries()
        if entry.cls is not None and not entry.requires_network
    ]


def _hops(i: int) -> list:
    """Two-hop INT telemetry: a loaded bottleneck and an idle hop."""
    dt = 2 * USEC
    qlen = max(0, 30_000 - 500 * i) if i % 3 else 45_000
    return [
        HopRecord(
            qlen=qlen,
            ts_ns=1000 + i * dt,
            tx_bytes=i * 2_500,
            bandwidth_bps=HOST_BW,
            port_id=1,
        ),
        HopRecord(
            qlen=0,
            ts_ns=1000 + i * dt,
            tx_bytes=i * 1_000,
            bandwidth_bps=HOST_BW,
            port_id=2,
        ),
    ]


def synthetic_stream(needs_int: bool, count: int = 60):
    """ACK feedback covering growth, congestion, ECN, and dup phases."""
    stream = []
    for i in range(1, count + 1):
        congested = (i // 10) % 2 == 1
        rtt = BASE_RTT_NS + (3 * BASE_RTT_NS if congested else i * 100)
        stream.append(
            AckFeedback(
                ack_seq=i * MTU,
                acked_seq=(i - 1) * MTU,
                newly_acked_bytes=MTU,
                is_dup=False,
                rtt_ns=rtt,
                now_ns=1_000 + i * 2 * USEC,
                ecn_marked=congested,
                int_hops=_hops(i) if needs_int else None,
                sent_high=(i + 10) * MTU,
            )
        )
    return stream


@pytest.mark.parametrize("name", drivable_names())
def test_window_stays_within_bounds(name):
    spec = make_algorithm(name)
    cc = spec.make_cc(None, None)
    sender = StubSender()
    cc.on_start(sender)
    low, high = cc.window_bounds(sender)
    assert low <= sender.cwnd <= high + 1e-6
    for i, feedback in enumerate(synthetic_stream(spec.needs_int)):
        cc.on_ack(sender, feedback)
        if i % 17 == 0:
            cc.on_cnp(sender)
        if i == 40:
            cc.on_loss(sender)
        low, high = cc.window_bounds(sender)
        assert low - 1e-9 <= sender.cwnd <= high + 1e-6, (
            f"{name}: cwnd {sender.cwnd} escaped [{low}, {high}] "
            f"at ack {i}"
        )
        assert 0.0 <= sender.pacing_rate_bps <= sender.host_bw_bps + 1e-6


@pytest.mark.parametrize("name", drivable_names())
def test_timeout_collapses_within_bounds(name):
    spec = make_algorithm(name)
    cc = spec.make_cc(None, None)
    sender = StubSender()
    cc.on_start(sender)
    cc.on_timeout(sender)
    low, high = cc.window_bounds(sender)
    assert low - 1e-9 <= sender.cwnd <= high + 1e-6


@pytest.mark.parametrize(
    "name", [n for n, e in all_entries() if e.requirements.int_stamping]
)
def test_needs_int_schemes_fail_loudly_without_int(name):
    spec = make_algorithm(name)
    cc = spec.make_cc(None, None)
    sender = StubSender()
    cc.on_start(sender)
    (feedback,) = synthetic_stream(needs_int=False, count=1)
    # The error names the concrete CC class (subclass-accurate).
    with pytest.raises(MissingFeedbackError, match="(?i)" + name):
        cc.on_ack(sender, feedback)


@pytest.mark.parametrize(
    "name", [n for n, e in all_entries() if not e.requirements.int_stamping
             and e.cls is not None and not e.requires_network]
)
def test_non_int_schemes_run_without_telemetry(name):
    """Schemes that do not declare INT must work on plain ACKs — a scheme
    that needs telemetry but forgot to declare it fails here."""
    spec = make_algorithm(name)
    cc = spec.make_cc(None, None)
    sender = StubSender()
    cc.on_start(sender)
    for feedback in synthetic_stream(needs_int=False, count=5):
        cc.on_ack(sender, feedback)  # must not raise MissingFeedbackError


@pytest.mark.parametrize("name", [n for n, _ in all_entries()])
def test_aliases_resolve_to_the_canonical_entry(name):
    entry = get_algorithm(name)
    for alias in entry.aliases:
        assert get_algorithm(alias) is entry
    assert get_algorithm(name.upper()) is entry


@pytest.mark.parametrize("name", [n for n, _ in all_entries()])
def test_make_algorithm_rejects_a_bogus_parameter(name):
    with pytest.raises(TypeError, match=name):
        make_algorithm(name, definitely_not_a_parameter=1)

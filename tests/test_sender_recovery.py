"""Sender loss-recovery edge cases — including the go-back-N dup-ACK
storm regression (one reordering event must cost at most one rewind)."""

from repro.cc.base import StaticWindow
from repro.sim.engine import Simulator
from repro.sim.packet import ACK, Packet
from repro.transport.flow import Flow
from repro.transport.sender import Sender
from repro.units import GBPS, USEC


class FakeHost:
    """Collects sent packets instead of forwarding them."""

    def __init__(self, sim):
        self.sim = sim
        self.sent = []
        self.nic = type("Nic", (), {"rate_bps": 10 * GBPS})()

    def register(self, flow_id, endpoint):
        pass

    def unregister(self, flow_id):
        pass

    def send(self, pkt):
        self.sent.append(pkt)


def make_sender(size=100_000):
    sim = Simulator()
    host = FakeHost(sim)
    flow = Flow(1, 0, 1, size)
    sender = Sender(
        sim,
        host,
        flow,
        StaticWindow(bdp_multiple=1.0),
        base_rtt_ns=20 * USEC,
        host_bw_bps=10 * GBPS,
    )
    sender.start()
    sim.run(until=sim.now)  # flush immediate sends
    return sim, host, sender


def ack(flow, ack_seq, acked_seq=0, ts_echo=0):
    pkt = Packet(ACK, flow.flow_id, flow.dst, flow.src)
    pkt.ack_seq = ack_seq
    pkt.acked_seq = acked_seq
    pkt.ts_echo = ts_echo
    return pkt


def test_new_ack_advances_and_resets_dupacks():
    sim, host, sender = make_sender()
    sim.run(until=100_000)
    sender.dup_acks = 2
    sender.on_packet(ack(sender.flow, 1000))
    assert sender.snd_una == 1000
    assert sender.dup_acks == 0


def test_three_dup_acks_trigger_one_rewind():
    sim, host, sender = make_sender()
    sim.run(until=100_000)
    sender.on_packet(ack(sender.flow, 1000))
    nxt_before = sender.snd_nxt
    for _ in range(3):
        sender.on_packet(ack(sender.flow, 1000))
    assert sender.flow.retransmissions == 1
    assert sender.snd_nxt >= 1000  # rewound to una, then resumed


def test_dup_acks_during_recovery_do_not_rewind_again():
    """The storm regression: after a rewind, the duplicate ACKs elicited
    by the retransmitted (already-received) data must not trigger another
    rewind until snd_una passes the recovery point."""
    sim, host, sender = make_sender()
    sim.run(until=100_000)
    sender.on_packet(ack(sender.flow, 1000))
    for _ in range(3):
        sender.on_packet(ack(sender.flow, 1000))
    assert sender.flow.retransmissions == 1
    # A flood of further dup ACKs while still below the recovery point.
    for _ in range(20):
        sender.on_packet(ack(sender.flow, 1000))
    assert sender.flow.retransmissions == 1  # still just the one rewind

    # Once una passes the recovery point, a fresh loss can recover again.
    recover = sender._recover_high
    sender.on_packet(ack(sender.flow, recover + 1000))
    for _ in range(3):
        sender.on_packet(ack(sender.flow, recover + 1000))
    assert sender.flow.retransmissions == 2


def test_rto_rewinds_without_dup_acks():
    sim, host, sender = make_sender()
    sent_before = len(host.sent)
    sim.run(until=sender.rto_ns + 1_000_000)
    assert sender.flow.retransmissions >= 1
    assert len(host.sent) > sent_before


def test_completion_cancels_timers():
    sim, host, sender = make_sender(size=5_000)
    sim.run(until=100_000)
    sender.on_packet(ack(sender.flow, 5_000))
    assert sender.done
    assert sender._rto_deadline == 0  # lazy timer disarmed
    # No retransmission fires afterwards.
    count = len(host.sent)
    sim.run(until=sender.rto_ns * 3)
    assert len(host.sent) == count


def test_inflight_consistent_after_full_ack():
    sim, host, sender = make_sender()
    sim.run(until=200_000)
    sender.on_packet(ack(sender.flow, sender.snd_nxt))
    # The cumulative ACK opens the window, so new data may leave at once —
    # but inflight can never be negative nor exceed window + one MTU.
    assert 0 <= sender.inflight <= sender.cwnd + sender.mtu_payload


def test_acks_after_done_are_ignored():
    sim, host, sender = make_sender(size=5_000)
    sim.run(until=100_000)
    sender.on_packet(ack(sender.flow, 5_000))
    sender.on_packet(ack(sender.flow, 5_000))  # late duplicate
    assert sender.done
    assert sender.flow.retransmissions == 0

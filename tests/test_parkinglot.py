"""Parking-lot topology tests + the §3.5 multi-bottleneck claim."""

import pytest

from repro.experiments.driver import FlowDriver
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.topology.parkinglot import ParkingLotParams, build_parking_lot
from repro.units import GBPS, MSEC


def test_host_numbering():
    p = ParkingLotParams(segments=2)
    assert p.e2e_src == 0
    assert p.cross_src(0) == 1 and p.cross_src(1) == 2
    assert p.e2e_dst == 3
    assert p.cross_dst(0) == 4 and p.cross_dst(1) == 5
    assert p.num_hosts == 6


def test_validation():
    with pytest.raises(ValueError):
        ParkingLotParams(segments=0)
    with pytest.raises(ValueError):
        ParkingLotParams(segments=2, segment_bw_bps=[1e9])


def test_validation_names_the_mismatch():
    # The length mismatch must fail eagerly with a clear message, not as
    # an IndexError deep inside build_parking_lot.
    with pytest.raises(ValueError, match=r"3 rate\(s\).*segments=2"):
        ParkingLotParams(segments=2, segment_bw_bps=[1e9, 2e9, 3e9])
    with pytest.raises(ValueError, match="positive"):
        ParkingLotParams(segments=2, segment_bw_bps=[1e9, 0])


def test_validation_per_segment_delays():
    with pytest.raises(ValueError, match=r"1 delay\(s\).*segments=3"):
        ParkingLotParams(segments=3, segment_delay_ns=[1000])
    with pytest.raises(ValueError, match=">= 0"):
        ParkingLotParams(segments=2, segment_delay_ns=[1000, -1])
    # Scalar stays valid and normalizes to one delay per segment.
    scalar = ParkingLotParams(segments=3, segment_delay_ns=2000)
    assert scalar.segment_delays_ns == [2000, 2000, 2000]
    explicit = ParkingLotParams(segments=2, segment_delay_ns=(1000, 3000))
    assert explicit.segment_delays_ns == [1000, 3000]
    # Any sequence type is accepted per the annotation, not just list/tuple.
    ranged = ParkingLotParams(segments=2, segment_delay_ns=range(1000, 3000, 1000))
    assert ranged.segment_delays_ns == [1000, 2000]
    with pytest.raises(ValueError, match=r"3 delay\(s\).*segments=2"):
        ParkingLotParams(segments=2, segment_delay_ns=range(3))


def test_per_segment_delays_shape_the_base_rtt():
    sim_a, sim_b = Simulator(), Simulator()
    uniform = build_parking_lot(
        sim_a, ParkingLotParams(segments=2, segment_delay_ns=2000)
    )
    skewed = build_parking_lot(
        sim_b, ParkingLotParams(segments=2, segment_delay_ns=[2000, 50_000])
    )
    # The extra one-way 48 us on segment 1 shows up twice in the RTT.
    assert skewed.base_rtt_ns - uniform.base_rtt_ns == 2 * 48_000


def test_three_segment_chain_delivers_under_cc():
    """>2 segments: end-to-end CC traffic crosses every link and each
    segment's cross traffic stays local."""
    sim = Simulator()
    p = ParkingLotParams(
        segments=3,
        host_bw_bps=10 * GBPS,
        segment_bw_bps=[10 * GBPS, 5 * GBPS, 10 * GBPS],
    )
    net = build_parking_lot(sim, p)
    driver = FlowDriver(net, "powertcp")
    e2e = driver.start_flow(p.e2e_src, p.e2e_dst, 500_000, at_ns=0)
    cross = [
        driver.start_flow(p.cross_src(i), p.cross_dst(i), 200_000, at_ns=0)
        for i in range(3)
    ]
    driver.run(until_ns=10 * MSEC)
    assert e2e.completed
    assert all(f.completed for f in cross)
    assert net.total_drops() == 0


def test_end_to_end_delivery():
    sim = Simulator()
    p = ParkingLotParams(segments=3)
    net = build_parking_lot(sim, p)
    seen = []
    net.host(p.e2e_dst).default_handler = seen.append
    net.host(p.e2e_src).send(Packet.data(1, p.e2e_src, p.e2e_dst, 0, 500))
    sim.run()
    assert len(seen) == 1


def test_cross_traffic_only_touches_its_segment():
    sim = Simulator()
    p = ParkingLotParams(segments=2)
    net = build_parking_lot(sim, p)
    seen = []
    net.host(p.cross_dst(0)).default_handler = seen.append
    net.host(p.cross_src(0)).send(
        Packet.data(1, p.cross_src(0), p.cross_dst(0), 0, 500)
    )
    sim.run()
    assert len(seen) == 1
    assert net.port("link1").tx_bytes == 0  # never crossed segment 1


def test_reverse_path_for_acks():
    sim = Simulator()
    p = ParkingLotParams(segments=2)
    net = build_parking_lot(sim, p)
    seen = []
    net.host(p.e2e_src).default_handler = seen.append
    net.host(p.e2e_dst).send(Packet.data(1, p.e2e_dst, p.e2e_src, 0, 64))
    sim.run()
    assert len(seen) == 1


def run_multi_bottleneck(algorithm: str):
    """End-to-end flow + cross traffic on each of 2 segments; segment 1
    is the tighter link."""
    sim = Simulator()
    p = ParkingLotParams(
        segments=2,
        host_bw_bps=10 * GBPS,
        segment_bw_bps=[10 * GBPS, 5 * GBPS],
    )
    net = build_parking_lot(sim, p)
    driver = FlowDriver(net, algorithm)
    e2e = driver.start_flow(p.e2e_src, p.e2e_dst, 10 ** 10, at_ns=0)
    for segment in range(2):
        driver.start_flow(
            p.cross_src(segment), p.cross_dst(segment), 10 ** 10, at_ns=0
        )
    driver.run(until_ns=20 * MSEC)
    return net, e2e


def test_multi_bottleneck_int_beats_delay_signal():
    """§3.5: with INT the law reacts to the most-bottlenecked hop only;
    with RTT it reacts to the sum of queueing delays, so the end-to-end
    flow under θ-PowerTCP ends up below its fair share."""
    _, e2e_int = run_multi_bottleneck("powertcp")
    _, e2e_delay = run_multi_bottleneck("theta-powertcp")
    # Fair share on the tighter 5G link is 2.5G; INT should get close.
    horizon_ns = 20 * MSEC
    int_rate = e2e_int.bytes_received * 8e9 / horizon_ns
    delay_rate = e2e_delay.bytes_received * 8e9 / horizon_ns
    assert int_rate > delay_rate
    # Proportional fairness charges the 2-hop flow twice, so its share
    # sits below the 2.5G max-min value; ~1.2G is the operating point.
    assert int_rate > 1.0e9


def test_multi_bottleneck_queues_controlled():
    net, _ = run_multi_bottleneck("powertcp")
    # Both segment links must keep bounded queues (no runaway).
    assert net.port("link0").max_qlen_bytes < 500_000
    assert net.port("link1").max_qlen_bytes < 500_000
    assert net.total_drops() == 0

"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.at(300, fired.append, "c")
    sim.at(100, fired.append, "a")
    sim.at(200, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.at(50, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.at(123, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [123]
    assert sim.now == 123


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.at(100, fired.append, "early")
    sim.at(900, fired.append, "late")
    sim.run(until=500)
    assert fired == ["early"]
    assert sim.now == 500  # clock advanced to the horizon
    sim.run()
    assert fired == ["early", "late"]


def test_after_is_relative_to_now():
    sim = Simulator()
    times = []
    sim.at(100, lambda: sim.after(50, lambda: times.append(sim.now)))
    sim.run()
    assert times == [150]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.at_cancellable(100, fired.append, "x")
    sim.at(50, event.cancel)
    sim.run()
    assert fired == []


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.at(100, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(50, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.after(-1, lambda: None)


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.after(10, chain, n + 1)

    sim.at(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 50


def test_step_processes_single_event():
    sim = Simulator()
    fired = []
    sim.at(10, fired.append, 1)
    sim.at(20, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_peek_time_skips_cancelled():
    sim = Simulator()
    event = sim.at_cancellable(10, lambda: None)
    sim.at(20, lambda: None)
    event.cancel()
    assert sim.peek_time() == 20


def test_peek_time_prunes_cancelled_heap_entries():
    sim = Simulator()
    events = [sim.at_cancellable(10 + i, lambda: None) for i in range(3)]
    sim.at(100, lambda: None)
    for event in events:
        event.cancel()
    # pending reports the *live* count immediately; the heap keeps the
    # cancelled entries only until lazy compaction reaches them.
    assert sim.pending == 1
    assert sim.heap_entries == 4
    assert sim.peek_time() == 100
    assert sim.heap_entries == 1  # cancelled prefix physically removed
    assert sim.pending == 1


def test_peek_time_empty_and_all_cancelled():
    sim = Simulator()
    assert sim.peek_time() is None
    event = sim.at_cancellable(10, lambda: None)
    event.cancel()
    assert sim.pending == 0
    assert sim.peek_time() is None
    assert sim.heap_entries == 0


def test_max_events_bound():
    sim = Simulator()
    for i in range(10):
        sim.at(i, lambda: None)
    processed = sim.run(max_events=4)
    assert processed == 4
    assert sim.events_processed == 4


def test_run_returns_processed_count():
    sim = Simulator()
    sim.at(1, lambda: None)
    sim.at(2, lambda: None)
    assert sim.run() == 2


def test_max_events_with_until_leaves_clock_resumable():
    sim = Simulator()
    fired = []
    for t in (10, 20, 30):
        sim.at(t, fired.append, t)
    assert sim.run(until=100, max_events=1) == 1
    # Budget tripped first: the clock must NOT jump to the horizon, or
    # the remaining events would fire in the past on the next run.
    assert fired == [10]
    assert sim.now == 10
    assert sim.run(until=100) == 2
    assert fired == [10, 20, 30]
    assert sim.now == 100  # horizon reached normally this time


def test_max_events_zero_processes_nothing():
    sim = Simulator()
    sim.at(10, lambda: None)
    assert sim.run(until=100, max_events=0) == 0
    assert sim.now == 0
    assert sim.pending == 1


def test_cancelled_events_do_not_consume_max_events_budget():
    sim = Simulator()
    fired = []
    doomed = sim.at_cancellable(10, fired.append, "doomed")
    sim.at(20, fired.append, "live")
    doomed.cancel()
    assert sim.run(max_events=1) == 1
    assert fired == ["live"]


# ----------------------------------------------------------------------
# The cancellable-timer API (at_cancellable / after_cancellable)
# ----------------------------------------------------------------------
def test_fast_path_returns_no_handle():
    sim = Simulator()
    assert sim.at(10, lambda: None) is None
    assert sim.after(10, lambda: None) is None


def test_at_cancellable_fires_like_at():
    sim = Simulator()
    fired = []
    sim.at_cancellable(100, fired.append, "timer")
    sim.at(50, fired.append, "fast")
    sim.run()
    assert fired == ["fast", "timer"]


def test_after_cancellable_relative_and_validated():
    sim = Simulator()
    fired = []
    sim.at(100, lambda: sim.after_cancellable(50, lambda: fired.append(sim.now)))
    sim.run()
    assert fired == [150]
    with pytest.raises(ValueError):
        sim.after_cancellable(-1, lambda: None)
    with pytest.raises(ValueError):
        sim.at_cancellable(sim.now - 1, lambda: None)


def test_cancel_is_idempotent_and_safe_after_firing():
    sim = Simulator()
    fired = []
    event = sim.at_cancellable(10, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    event.cancel()  # already fired: must be a no-op
    event.cancel()
    assert sim.pending == 0
    doomed = sim.at_cancellable(20, fired.append, "y")
    doomed.cancel()
    doomed.cancel()  # double-cancel must not decrement the live count twice
    assert sim.pending == 0
    sim.run()
    assert fired == ["x"]


def test_pending_tracks_live_events_only():
    sim = Simulator()
    sim.at(10, lambda: None)
    timers = [sim.at_cancellable(20 + i, lambda: None) for i in range(5)]
    assert sim.pending == 6
    for timer in timers[:3]:
        timer.cancel()
    assert sim.pending == 3
    assert sim.heap_entries == 6  # cancelled entries await lazy compaction
    sim.run()
    assert sim.pending == 0
    assert sim.heap_entries == 0
    assert sim.events_processed == 3


def test_cancellation_heavy_timer_workload():
    # Mimics retransmission timers: every "ack" cancels and re-arms the
    # timer; only the final timer may fire.  Exercises live-count
    # bookkeeping and lazy compaction under churn.
    sim = Simulator()
    fired = []
    state = {"timer": None}

    def fire():
        fired.append(sim.now)

    def arm():
        if state["timer"] is not None:
            state["timer"].cancel()
        state["timer"] = sim.after_cancellable(1_000, fire)

    for t in range(0, 500, 10):
        sim.at(t, arm)
    sim.run()
    # Only the last re-armed timer fires (at 490 + 1000).
    assert fired == [1490]
    assert sim.pending == 0
    assert sim.events_processed == 51  # 50 arms + 1 timer


def test_mixed_fast_and_cancellable_tie_order():
    sim = Simulator()
    fired = []
    sim.at(50, fired.append, "fast-1")
    sim.at_cancellable(50, fired.append, "timer")
    sim.at(50, fired.append, "fast-2")
    sim.run()
    assert fired == ["fast-1", "timer", "fast-2"]  # scheduling order


def test_run_with_gc_pause_disabled():
    sim = Simulator(pause_gc=False)
    fired = []
    sim.at(10, fired.append, 1)
    sim.run()
    assert fired == [1]

"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import percentile
from repro.core.power import normalized_power_from_hop
from repro.fluid.laws import GRADIENT_LAW, POWER_LAW, QUEUE_LAW
from repro.sim.buffer import SharedBuffer
from repro.sim.engine import Simulator
from repro.sim.packet import HopRecord
from repro.units import GBPS, USEC, tx_time_ns
from repro.workloads.distributions import WEB_SEARCH


# ----------------------------------------------------------------------
# Engine: event ordering is a total order
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_engine_processes_any_schedule_in_order(times):
    sim = Simulator()
    fired = []
    for i, t in enumerate(times):
        sim.at(t, fired.append, (t, i))
    sim.run()
    assert fired == sorted(fired)  # by time, then insertion order
    assert len(fired) == len(times)


@given(
    st.lists(
        st.tuples(st.integers(0, 10**6), st.booleans()), min_size=1, max_size=100
    )
)
@settings(max_examples=50, deadline=None)
def test_engine_cancellation_is_exact(events):
    sim = Simulator()
    fired = []
    handles = []
    for t, cancel in events:
        handles.append((sim.at_cancellable(t, fired.append, t), cancel))
    for handle, cancel in handles:
        if cancel:
            handle.cancel()
    sim.run()
    expected = sorted(t for (t, cancel) in events if not cancel)
    assert sorted(fired) == expected


# ----------------------------------------------------------------------
# Dynamic Thresholds: accounting never goes negative or over capacity
# ----------------------------------------------------------------------
@given(
    st.integers(1_000, 100_000),
    st.floats(0.1, 8.0),
    st.lists(st.integers(1, 2_000), min_size=1, max_size=300),
)
@settings(max_examples=50, deadline=None)
def test_buffer_accounting_invariants(capacity, alpha, sizes):
    buf = SharedBuffer(capacity, alpha)
    queued = []
    for size in sizes:
        if buf.admits(0, size):
            buf.on_enqueue(size)
            queued.append(size)
        else:
            buf.on_drop()
        assert 0 <= buf.used <= buf.capacity
    for size in queued:
        buf.on_dequeue(size)
    assert buf.used == 0


# ----------------------------------------------------------------------
# Power (Property 1 algebra): positivity and monotonicity
# ----------------------------------------------------------------------
@given(
    st.integers(0, 10**6),  # prev qlen
    st.integers(0, 10**6),  # cur qlen
    st.integers(1_000, 10**7),  # dt ns
    st.integers(0, 10**7),  # tx bytes in dt
)
@settings(max_examples=100, deadline=None)
def test_power_sign_follows_current(q0, q1, dt, tx):
    prev = HopRecord(q0, 0, 0, 100 * GBPS, 1)
    cur = HopRecord(q1, dt, tx, 100 * GBPS, 1)
    sample = normalized_power_from_hop(cur, prev, 20 * USEC)
    # current = q̇ + µ; with tx >= 0, power is negative only if the queue
    # drains faster than the link transmits (impossible physically, but
    # the estimator must stay finite either way).
    assert sample is not None
    if q1 >= q0:
        assert sample.norm >= 0.0


@given(st.integers(0, 10**6), st.integers(1_000, 10**6))
@settings(max_examples=100, deadline=None)
def test_power_monotone_in_queue_length(qlen, dt):
    tau = 20 * USEC
    rate_bytes = int(12.5e9 * dt / 1e9)
    base = normalized_power_from_hop(
        HopRecord(qlen, dt, rate_bytes, 100 * GBPS, 1),
        HopRecord(qlen, 0, 0, 100 * GBPS, 1),
        tau,
    )
    higher = normalized_power_from_hop(
        HopRecord(qlen + 10_000, dt, rate_bytes, 100 * GBPS, 1),
        HopRecord(qlen + 10_000, 0, 0, 100 * GBPS, 1),
        tau,
    )
    assert higher.norm >= base.norm


# ----------------------------------------------------------------------
# Control laws: multiplicative factor is 1 exactly at equilibrium
# ----------------------------------------------------------------------
@given(st.floats(1e8, 1e10), st.floats(1e-6, 1e-3))
@settings(max_examples=100, deadline=None)
def test_laws_neutral_at_equilibrium(b, tau):
    for law in (QUEUE_LAW, GRADIENT_LAW, POWER_LAW):
        factor = law.multiplicative_factor(0.0, 0.0, b, b, tau)
        assert abs(factor - 1.0) < 1e-9


# ----------------------------------------------------------------------
# Percentile: bounds and monotonicity
# ----------------------------------------------------------------------
@given(st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=500))
@settings(max_examples=100, deadline=None)
def test_percentile_within_bounds(values):
    for pct in (0, 25, 50, 75, 99.9, 100):
        v = percentile(values, pct)
        assert min(values) <= v <= max(values)


@given(st.lists(st.floats(0, 1e9), min_size=2, max_size=200))
@settings(max_examples=50, deadline=None)
def test_percentile_monotone_in_pct(values):
    results = [percentile(values, p) for p in (0, 10, 50, 90, 100)]
    assert results == sorted(results)


# ----------------------------------------------------------------------
# Workload distribution: samples within support, quantile monotone
# ----------------------------------------------------------------------
@given(st.integers(0, 2**31 - 1))
@settings(max_examples=100, deadline=None)
def test_websearch_sample_in_support(seed):
    rng = random.Random(seed)
    size = WEB_SEARCH.sample(rng)
    assert 1 <= size <= 30_000_000


@given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
@settings(max_examples=100, deadline=None)
def test_websearch_quantile_monotone(u1, u2):
    lo, hi = sorted((u1, u2))
    assert WEB_SEARCH.quantile(lo) <= WEB_SEARCH.quantile(hi)


# ----------------------------------------------------------------------
# tx_time: additivity (serializing a+b takes within 1ns of a then b)
# ----------------------------------------------------------------------
@given(st.integers(1, 10**6), st.integers(1, 10**6), st.floats(1e9, 4e11))
@settings(max_examples=100, deadline=None)
def test_tx_time_superadditive_within_rounding(a, b, rate):
    together = tx_time_ns(a + b, rate)
    apart = tx_time_ns(a, rate) + tx_time_ns(b, rate)
    assert together <= apart <= together + 2  # ceil rounding at most 1ns each

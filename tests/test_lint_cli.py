"""Tests for the ``repro lint`` CLI subcommand."""

import json
import os

import pytest

from repro.cli import main
from repro.lint.registry import RULES, load_builtin_rules

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")


def _fixture(*rel_parts):
    return os.path.join(FIXTURES, *rel_parts)


def test_list_rules_prints_every_registered_id(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    load_builtin_rules()
    assert len(RULES) >= 6
    for rule_id, entry in RULES.items():
        assert rule_id in out
        assert entry.description.splitlines()[0] in out


def test_clean_file_exits_zero(capsys):
    assert main(["lint", _fixture("repro", "sim", "good_determinism.py")]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_bad_file_exits_nonzero_and_prints_findings(capsys):
    rc = main(["lint", _fixture("repro", "sim", "bad_cancel.py")])
    assert rc == 1
    out = capsys.readouterr().out
    assert "cancel-fast-path" in out
    assert "bad_cancel.py:6" in out
    assert "2 finding(s)" in out


def test_json_output_schema(capsys):
    rc = main(["lint", "--json", _fixture("repro", "sim", "bad_env.py")])
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == 1
    assert doc["files_checked"] == 1
    assert doc["ok"] is False
    lines = [(f["rule_id"], f["line"]) for f in doc["findings"]]
    assert lines == [("env-read", 8), ("env-read", 9), ("env-read", 10)]
    for field in ("path", "line", "col", "rule_id", "message"):
        assert field in doc["findings"][0]


def test_json_reports_suppressions(capsys):
    rc = main(["lint", "--json", _fixture("repro", "sim", "suppressed_ok.py")])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["suppressed"] == 1
    assert doc["findings"] == []


def test_select_single_rule(capsys):
    rc = main(
        [
            "lint",
            "--select",
            "unseeded-rng",
            _fixture("repro", "sim", "bad_determinism.py"),
        ]
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "unseeded-rng" in out
    assert "wall-clock" not in out


def test_select_unknown_rule_errors():
    with pytest.raises(SystemExit):
        main(["lint", "--select", "no-such-rule", FIXTURES])


def test_default_targets_lint_clean(capsys):
    """The shipped tree must satisfy its own invariants (src/examples/benchmarks)."""
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out

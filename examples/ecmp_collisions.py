#!/usr/bin/env python3
"""ECMP hash collisions vs. least-loaded routing on a fat-tree.

ECMP hashes (flow, switch) to pick an uplink, so it is blind to load:
with 3 ToR uplinks, the five flows below happen to hash onto only two of
them — one uplink sits idle while another carries three flows.  The
``least-loaded`` policy (repro.routing) instead pins each new flow to
the candidate with the fewest assigned flows, spreading the same
workload 2/2/1.

The script runs the identical five-flow workload under both policies and
prints per-uplink transmitted bytes, the hotspot's peak queue, and flow
completion times.

Run:  python examples/ecmp_collisions.py      (HORIZON_NS tunes run length)
"""

import os

from repro.experiments.driver import FlowDriver
from repro.sim.engine import Simulator
from repro.topology.registry import build_topology, make_topology_params
from repro.units import GBPS, MSEC

HORIZON_NS = int(os.environ.get("HORIZON_NS", 20 * MSEC))

FLOW_BYTES = 200_000
NUM_FLOWS = 5


def run(routing: str) -> None:
    sim = Simulator()
    params = make_topology_params(
        "fattree",
        num_pods=2,
        tors_per_pod=2,
        aggs_per_pod=3,  # 3 uplinks per ToR: room for collisions to show
        num_cores=3,
        hosts_per_tor=NUM_FLOWS,
        host_bw_bps=10 * GBPS,
        fabric_bw_bps=10 * GBPS,
        routing=routing,
    )
    net = build_topology(sim, "fattree", params)
    driver = FlowDriver(net, "powertcp")

    # Five flows out of tor0 (hosts 0..4) into distinct pod-1 hosts: the
    # only shared links are tor0's three uplinks.
    pod1_first = 2 * NUM_FLOWS
    flows = [
        driver.start_flow(src, pod1_first + src, FLOW_BYTES, at_ns=0)
        for src in range(NUM_FLOWS)
    ]
    driver.run(until_ns=HORIZON_NS)

    uplinks = net.extras["tor_uplinks"][0]
    print(f"routing={routing}")
    for a, port in enumerate(uplinks):
        print(
            f"  tor0-up{a}: {port.tx_bytes:>9d} B tx, "
            f"peak queue {port.max_qlen_bytes:>7d} B"
        )
    done = [f for f in flows if f.completed]
    if done:
        worst = max(f.fct_ns for f in done)
        print(f"  {len(done)}/{len(flows)} flows done, "
              f"worst FCT {worst / 1e6:.3f} ms")
    print()


def main() -> None:
    run("ecmp")
    run("least-loaded")
    print("ECMP leaves an uplink idle while three flows share another;")
    print("least-loaded spreads the same five flows 2/2/1.")


if __name__ == "__main__":
    main()

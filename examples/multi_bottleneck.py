#!/usr/bin/env python3
"""§3.5 scenario: INT versus delay feedback across multiple bottlenecks.

A parking-lot chain: one end-to-end flow crosses two segment links
(10 Gbps then 5 Gbps) while each segment carries its own cross traffic.
PowerTCP's INT feedback isolates the most-bottlenecked hop; θ-PowerTCP's
RTT signal sums the queueing of both hops and over-throttles the
end-to-end flow — run it and compare the shares.

This is a thin wrapper over the registered ``multi_bottleneck`` scenario;
the same experiment is runnable as ``python -m repro run multi_bottleneck``
and sweepable as ``python -m repro sweep multi_bottleneck ...``.

Run:  python examples/multi_bottleneck.py          (HORIZON_NS tunes length)
"""

import os

from repro.scenarios import get_scenario
from repro.units import MSEC

HORIZON_NS = int(os.environ.get("HORIZON_NS", 20 * MSEC))


def run(algorithm: str) -> None:
    result = get_scenario("multi_bottleneck").run(
        algorithm=algorithm, duration_ns=HORIZON_NS
    )
    metrics = result.metrics
    cross = result.series["cross_goodput_bps"]
    rates = result.series["segment_bw_bps"]
    print(f"--- {algorithm} ---")
    print(
        f"  end-to-end flow (2 hops): "
        f"{metrics['e2e_goodput_bps'] / 1e9:5.2f} Gbps "
        f"(share of 5G bottleneck: {metrics['e2e_bottleneck_share']:.2f})"
    )
    for segment, (goodput, rate) in enumerate(zip(cross, rates)):
        print(
            f"  cross flow seg{segment} ({rate / 1e9:.0f}G):"
            f"{goodput / 1e9:9.2f} Gbps"
        )
    peaks = result.series["link_peak_qlen_bytes"]
    print(
        "  max queues: "
        + ", ".join(
            f"link{i} {peak / 1000:.1f} KB" for i, peak in enumerate(peaks)
        )
    )
    print()


def main() -> None:
    for algorithm in ("powertcp", "theta-powertcp", "hpcc"):
        run(algorithm)
    print("§3.5: the INT law reacts only to the most-bottlenecked hop; the")
    print("delay law reacts to the *sum* of hop delays, over-throttling the")
    print("end-to-end flow.")


if __name__ == "__main__":
    main()

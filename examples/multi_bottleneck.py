#!/usr/bin/env python3
"""§3.5 scenario: INT versus delay feedback across multiple bottlenecks.

A parking-lot chain: one end-to-end flow crosses two segment links
(10 Gbps then 5 Gbps) while each segment carries its own cross traffic.
PowerTCP's INT feedback isolates the most-bottlenecked hop; θ-PowerTCP's
RTT signal sums the queueing of both hops and over-throttles the
end-to-end flow — run it and compare the shares.

Run:  python examples/multi_bottleneck.py
"""

from repro.experiments.driver import FlowDriver
from repro.sim.engine import Simulator
from repro.topology.parkinglot import ParkingLotParams, build_parking_lot
from repro.units import GBPS, MSEC

HORIZON_NS = 20 * MSEC


def run(algorithm: str) -> None:
    sim = Simulator()
    params = ParkingLotParams(
        segments=2,
        host_bw_bps=10 * GBPS,
        segment_bw_bps=[10 * GBPS, 5 * GBPS],
    )
    net = build_parking_lot(sim, params)
    driver = FlowDriver(net, algorithm)
    e2e = driver.start_flow(params.e2e_src, params.e2e_dst, 10 ** 10, at_ns=0)
    cross = [
        driver.start_flow(
            params.cross_src(i), params.cross_dst(i), 10 ** 10, at_ns=0
        )
        for i in range(2)
    ]
    driver.run(until_ns=HORIZON_NS)

    def gbps(flow):
        return flow.bytes_received * 8 / HORIZON_NS

    print(f"--- {algorithm} ---")
    print(f"  end-to-end flow (2 hops): {gbps(e2e):5.2f} Gbps")
    print(f"  cross flow seg0 (10G):    {gbps(cross[0]):5.2f} Gbps")
    print(f"  cross flow seg1 (5G):     {gbps(cross[1]):5.2f} Gbps")
    print(
        f"  max queues: link0 {net.port('link0').max_qlen_bytes / 1000:.1f} KB, "
        f"link1 {net.port('link1').max_qlen_bytes / 1000:.1f} KB"
    )
    print()


def main() -> None:
    for algorithm in ("powertcp", "theta-powertcp", "hpcc"):
        run(algorithm)
    print("§3.5: the INT law reacts only to the most-bottlenecked hop; the")
    print("delay law reacts to the *sum* of hop delays, over-throttling the")
    print("end-to-end flow.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Extending the framework: plug in your own congestion-control law.

Implements a toy "half-power" variant — PowerTCP's control law but using
the square root of normalized power — registers it with the CC plugin
registry (one decorator; no registry edits), and races it against real
PowerTCP on the incast microbenchmark.  Use this as the template for
experimenting with new window-update rules.

The decorator declares the scheme's :class:`repro.cc.registry.Requirements`
(here: INT stamping, like PowerTCP); once registered the name works
everywhere — ``FlowDriver(net, "half-power")``,
``python -m repro run incast --algorithm half-power``, sweeps, and even
mixed per-flow deployments next to other schemes.

Run:  python examples/custom_algorithm.py    (HORIZON_NS tunes run length)
"""

import math
import os

from repro.cc.registry import Requirements, make_algorithm, register
from repro.core.powertcp import PowerTcp
from repro.experiments.driver import FlowDriver
from repro.sim.engine import Simulator
from repro.sim.tracing import PortProbe
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.units import GBPS, MSEC, USEC

HORIZON_NS = int(os.environ.get("HORIZON_NS", 4 * MSEC))


@register(
    "half-power",
    requirements=Requirements(int_stamping=True),
    description="PowerTCP with a sqrt-softened power reaction (demo)",
)
class HalfPowerTcp(PowerTcp):
    """PowerTCP with a softened reaction: divide by sqrt(normalized power).

    sqrt compresses the signal toward 1, so reactions to both congestion
    and spare capacity are weaker — expect slower queue drain than the
    real control law.  (Pedagogical only.)
    """

    def on_ack(self, sender, feedback) -> None:
        norm_power = self._estimator.update(
            feedback.require_int(type(self).__name__)
        )
        if norm_power is None:
            return
        softened = math.sqrt(norm_power)
        new_cwnd = (
            self.gamma * (self._cwnd_old / softened + self.beta_bytes)
            + (1.0 - self.gamma) * sender.cwnd
        )
        self.set_window(sender, new_cwnd)
        self._update_old(sender, feedback)


def race(spec, label):
    sim = Simulator()
    net = build_dumbbell(
        sim,
        DumbbellParams(
            left_hosts=11,
            right_hosts=1,
            host_bw_bps=10 * GBPS,
            bottleneck_bw_bps=10 * GBPS,
        ),
    )
    driver = FlowDriver(net, spec)
    driver.start_flow(0, 11, 10 ** 10, at_ns=0)  # long flow
    for src in range(1, 11):  # 10:1 incast
        driver.start_flow(src, 11, 200_000, at_ns=150 * USEC)
    probe = PortProbe(sim, net.port("bottleneck"), 10 * USEC).start()
    driver.run(until_ns=HORIZON_NS)
    settled = probe.qlen_bytes[len(probe.qlen_bytes) // 2 :]
    print(
        f"  {label:12s} peak queue "
        f"{net.port('bottleneck').max_qlen_bytes / 1000:6.1f} KB, "
        f"settled mean {sum(settled) / len(settled) / 1000:6.2f} KB"
    )


def main() -> None:
    print("10:1 incast, real PowerTCP vs the softened custom law:")
    race(make_algorithm("powertcp"), "powertcp")
    race(make_algorithm("half-power"), "half-power")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Figs. 2-3 scenario: the control-law taxonomy, analytically.

Integrates the fluid model (Eqs. 3-4) for the three control-law classes
and prints (i) the Fig. 2 reaction curves and (ii) Fig. 3 phase-portrait
diagnostics: equilibrium uniqueness and post-fill throughput loss.  Also
checks Theorems 1-2 numerically.

Run:  python examples/fluid_phase_portrait.py
"""

from repro.fluid import (
    FluidParams,
    GRADIENT_LAW,
    POWER_LAW,
    QUEUE_LAW,
    convergence_time_constant,
    decrease_vs_buildup_rate,
    linearized_eigenvalues,
    phase_portrait,
    simulate,
    theoretical_time_constant_s,
    three_case_comparison,
)


def main() -> None:
    params = FluidParams()  # 100 Gbps, 20 us base RTT — the paper's example
    params.beta_bytes = 0.01 * params.bdp_bytes
    bdp = params.bdp_bytes
    b_Bps = params.bandwidth_Bps

    print("== Fig. 2a: multiplicative decrease vs queue buildup rate ==")
    series = decrease_vs_buildup_rate(
        bandwidth_Bps=b_Bps,
        tau_s=params.tau_s,
        queue_bytes=0.5 * bdp,
        rate_multiples=[0, 2, 4, 8],
    )
    for name, values in series.items():
        print(f"  {name:14s} {['%.2f' % v for v in values]}")

    print()
    print("== Fig. 2c: the three-case blindness demonstration ==")
    for case in three_case_comparison(bandwidth_Bps=b_Bps, tau_s=params.tau_s):
        print(
            f"  {case.label:45s} V={case.voltage:5.2f} "
            f"I={case.current:5.2f} P={case.power:5.2f}"
        )

    print()
    print("== Fig. 3: phase portraits ==")
    for law in (QUEUE_LAW, GRADIENT_LAW, POWER_LAW):
        portrait = phase_portrait(law, params)
        print(
            f"  {law.name:14s} equilibrium spread {portrait.equilibrium_spread():6.3f}, "
            f"trajectories with throughput loss {portrait.fraction_with_loss():4.0%}"
        )

    print()
    print("== Theorems 1-2 ==")
    eigs = linearized_eigenvalues(params)
    print(f"  eigenvalues of the linearized power system: {eigs[0]:.0f}, {eigs[1]:.0f}")
    trace = simulate(POWER_LAW, params, 4 * bdp, 3 * bdp, 60 * params.tau_s)
    fitted = convergence_time_constant(
        trace.times_s, trace.window_bytes, bdp + params.beta_bytes
    )
    theory = theoretical_time_constant_s(params)
    print(
        f"  convergence time constant: fitted {fitted * 1e6:.2f} us vs "
        f"theory (δt/γ) {theory * 1e6:.2f} us"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fig. 4 scenario: how each algorithm reacts to a 10:1 incast.

A long flow occupies the path; ten senders burst toward the same receiver
at t ~ 150 us.  Prints an ASCII time series of bottleneck queue length
and throughput for each algorithm — the shape to look for is the paper's:
PowerTCP drains the queue to ~zero *without* a throughput gap afterwards.

Run:  python examples/incast_reaction.py     (HORIZON_NS tunes run length)
"""

import os

from repro.experiments.incast import IncastConfig, run_incast
from repro.units import MSEC

HORIZON_NS = int(os.environ.get("HORIZON_NS", 4 * MSEC))
ALGORITHMS = ["powertcp", "theta-powertcp", "hpcc", "timely", "homa"]
SPARK = " .:-=+*#%@"


def sparkline(values, peak):
    if peak <= 0:
        return " " * len(values)
    chars = []
    for value in values:
        index = min(int(value / peak * (len(SPARK) - 1)), len(SPARK) - 1)
        chars.append(SPARK[index])
    return "".join(chars)


def main() -> None:
    for algorithm in ALGORITHMS:
        result = run_incast(
            IncastConfig(
                algorithm=algorithm, fanout=10, duration_ns=HORIZON_NS
            )
        )
        stride = max(len(result.qlen_bytes) // 100, 1)
        qlen = result.qlen_bytes[::stride]
        thr = result.throughput_bps[::stride]
        print(f"--- {algorithm} (10:1 incast) ---")
        print(f"  queue      |{sparkline(qlen, max(result.qlen_bytes) or 1)}|")
        print(f"  throughput |{sparkline(thr, result.bottleneck_bw_bps)}|")
        print(
            f"  peak queue {result.peak_qlen_bytes / 1000:.0f} KB, "
            f"settled queue {result.mean_late_qlen() / 1000:.1f} KB, "
            f"burst utilization {result.burst_utilization():.0%}, "
            f"{len(result.burst_fcts_ns)}/10 bursts done"
        )
        print()


if __name__ == "__main__":
    main()

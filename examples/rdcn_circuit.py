#!/usr/bin/env python3
"""Fig. 8 scenario: congestion control on a reconfigurable datacenter.

One ToR pair runs persistent flows; a rotating optical circuit gives them
100 Gbps for 225 us days between 20 us reconfiguration nights, with a
25 Gbps packet network always available.  Prints circuit utilization,
VOQ occupancy and tail queuing latency for PowerTCP, HPCC, and reTCP
with both paper prebuffer settings.

Run:  python examples/rdcn_circuit.py        (HORIZON_NS tunes run length)
"""

import os

from repro.experiments.rdcn import (
    RdcnConfig,
    run_rdcn,
    scaled_prebuffer_ns,
    scaled_rdcn,
)
from repro.units import MSEC, USEC

HORIZON_NS = int(os.environ.get("HORIZON_NS", 4 * MSEC))

VARIANTS = [
    ("powertcp", 0),
    ("hpcc", 0),
    ("retcp", 600 * USEC),
    ("retcp", 1800 * USEC),
]


def main() -> None:
    print("RDCN ToR pair: 25G packet network + rotating 100G circuit")
    print()
    for algorithm, paper_prebuffer in VARIANTS:
        params = scaled_rdcn()
        prebuffer = (
            scaled_prebuffer_ns(params, paper_prebuffer)
            if paper_prebuffer
            else 0
        )
        result = run_rdcn(
            RdcnConfig(
                algorithm=algorithm,
                params=params,
                prebuffer_ns=prebuffer,
                duration_ns=HORIZON_NS,
            )
        )
        name = (
            f"{algorithm}-{paper_prebuffer // 1000}us"
            if paper_prebuffer
            else algorithm
        )
        print(f"--- {name} ---")
        print(f"  circuit utilization: {result.circuit_utilization:.0%}")
        print(f"  peak circuit VOQ:    {result.peak_voq_bytes() / 1000:.0f} KB")
        print(
            f"  p99 queuing latency: "
            f"{result.tail_queuing_latency_ns / 1000:.1f} us"
        )
        print(f"  pair goodput:        {result.mean_goodput_bps / 1e9:.1f} Gbps")
        print()
    print("paper: reTCP fills instantly but pays latency; HPCC keeps the")
    print("VOQ empty but underfills; PowerTCP achieves both (80-85% util).")


if __name__ == "__main__":
    main()

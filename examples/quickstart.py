#!/usr/bin/env python3
"""Quickstart: run PowerTCP against HPCC on a shared bottleneck.

Builds a dumbbell network (4 senders -> 1 receiver through a 10 Gbps
link), starts four simultaneous 1 MB transfers under each algorithm, and
prints flow completion times, queue behaviour, and the measured
normalized power at the bottleneck.

Run:  python examples/quickstart.py          (HORIZON_NS tunes run length)
"""

import os

from repro import GBPS, MSEC, DumbbellParams, Simulator, build_dumbbell
from repro.experiments.driver import FlowDriver
from repro.sim.tracing import PortProbe
from repro.units import USEC

HORIZON_NS = int(os.environ.get("HORIZON_NS", 10 * MSEC))


def run(algorithm: str) -> None:
    sim = Simulator()
    net = build_dumbbell(
        sim,
        DumbbellParams(
            left_hosts=4,
            right_hosts=1,
            host_bw_bps=10 * GBPS,
            bottleneck_bw_bps=10 * GBPS,
        ),
    )
    driver = FlowDriver(net, algorithm)
    receiver = 4  # the single right-side host
    flows = [
        driver.start_flow(src, receiver, 1_000_000, at_ns=0) for src in range(4)
    ]

    bottleneck = net.port("bottleneck")
    probe = PortProbe(sim, bottleneck, interval_ns=50 * USEC).start()
    driver.run(until_ns=HORIZON_NS)

    print(f"--- {algorithm} ---")
    print(f"  base RTT: {net.base_rtt_ns / 1000:.1f} us")
    for flow in flows:
        status = f"{flow.fct_ns / 1000:8.1f} us" if flow.completed else "unfinished"
        print(f"  flow {flow.flow_id}: {flow.size_bytes} B in {status}")
    print(f"  peak bottleneck queue: {bottleneck.max_qlen_bytes / 1000:.1f} KB")
    finished = [f.finish_ns for f in flows if f.completed]
    last_finish = max(finished) if finished else HORIZON_NS
    active = [
        rate
        for t, rate in zip(probe.throughput.times_ns, probe.throughput_bps)
        if t <= last_finish
    ]
    mean_thr = sum(active) / max(len(active), 1)
    print(f"  bottleneck throughput while active: {mean_thr / 1e9:.2f} Gbps")
    print(f"  drops: {net.total_drops()}")
    print()


def main() -> None:
    for algorithm in ("powertcp", "theta-powertcp", "hpcc"):
        run(algorithm)


if __name__ == "__main__":
    main()

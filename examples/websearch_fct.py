#!/usr/bin/env python3
"""Fig. 6 scenario (scaled): web-search FCT slowdowns on a fat-tree.

Offers web-search-distributed flows at 60 % ToR-uplink load under
PowerTCP, θ-PowerTCP and HPCC, and prints the tail slowdown per flow-size
class and per Fig. 6 size bin.  Flow sizes are scaled by 1/16 (bins are
rescaled symmetrically) to fit a quick interactive run.

Run:  python examples/websearch_fct.py [load]   (HORIZON_NS tunes length)
"""

import os
import sys

from repro.experiments.websearch import WebsearchConfig, run_websearch
from repro.units import MSEC

HORIZON_NS = int(os.environ.get("HORIZON_NS", 15 * MSEC))
ALGORITHMS = ["powertcp", "theta-powertcp", "hpcc"]


def main() -> None:
    load = float(sys.argv[1]) if len(sys.argv) > 1 else 0.6
    print(f"web-search @ {load:.0%} load (sizes x1/16, p99 tails, 300 flows)")
    print()
    for algorithm in ALGORITHMS:
        result = run_websearch(
            WebsearchConfig(
                algorithm=algorithm,
                load=load,
                duration_ns=HORIZON_NS,
                drain_ns=2 * HORIZON_NS,
                size_scale=1 / 16,
                max_flows=300,
            )
        )
        summary = result.fct_summary(pct=99)
        print(summary.row())
        bins = result.size_bins(pct=99)
        series = "  ".join(
            f"{edge // 1000}K:{value:.1f}"
            for edge, value, count in bins
            if value is not None
        )
        print(f"  per-bin p99 slowdown: {series}")
        print(f"  drops: {result.drops}")
        print()


if __name__ == "__main__":
    main()

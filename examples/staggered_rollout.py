#!/usr/bin/env python3
"""§6 deployment mix: a staggered PowerTCP rollout next to an incumbent.

Three rollout steps on one dumbbell bottleneck: a DCQCN incumbent owns
the link at t=0, a first PowerTCP group arrives a quarter of the way in,
and a second wave doubles the PowerTCP share at the halfway mark.  The
registered ``coexistence`` scenario reports each group's steady-state
share, the pairwise cross-group ratios, and the time to fair after each
rollout step.

The same experiment runs on any registered topology — pass
``topology=fattree`` (seeded permutation pairs on the oversubscribed
fabric) or ``topology=parkinglot`` (per-segment cross traffic):

    python -m repro run coexistence --set topology=fattree \
        --set "groups=[{'algorithm':'powertcp'},{'algorithm':'dcqcn'}]"

Run:  python examples/staggered_rollout.py       (HORIZON_NS tunes length)
"""

import os

from repro.scenarios import get_scenario
from repro.units import MSEC

HORIZON_NS = int(os.environ.get("HORIZON_NS", 8 * MSEC))


def main() -> None:
    groups = [
        {"algorithm": "dcqcn", "fraction": 0.5, "name": "incumbent"},
        {
            "algorithm": "powertcp",
            "fraction": 0.25,
            "start_ns": HORIZON_NS // 4,
            "name": "wave1",
        },
        {
            "algorithm": "powertcp",
            "fraction": 0.25,
            "start_ns": HORIZON_NS // 2,
            "name": "wave2",
        },
    ]
    result = get_scenario("coexistence").run(
        groups=groups, total_flows=8, duration_ns=HORIZON_NS
    )
    metrics = result.metrics
    print("staggered rollout on the dumbbell (DCQCN incumbent):")
    for group in ("incumbent", "wave1", "wave2"):
        share = metrics[f"group_{group}_share"]
        jain = metrics[f"group_{group}_jain"]
        ttf = metrics[f"group_{group}_time_to_fair_ns"]
        ttf_text = f"{ttf / 1e6:.2f} ms" if ttf is not None else "never"
        print(
            f"  {group:>9s}: share={share:5.2f} jain={jain:5.3f} "
            f"time-to-fair={ttf_text}"
        )
    print(
        "  incumbent-vs-newcomer per-flow ratio "
        f"(incumbent/wave1): {metrics['cross_ratio_incumbent_wave1']:.2f}"
    )
    print(
        f"  peak queue {metrics['peak_qlen_bytes'] / 1000:.1f} KB, "
        f"drops {metrics['drops']:.0f}"
    )


if __name__ == "__main__":
    main()

"""Ablation — per-ACK versus once-per-RTT window updates.

The paper limits PowerTCP (and HPCC) to once-per-RTT updates in the RDCN
case study "for a fair comparison with reTCP"; per-ACK updates are the
default everywhere else.  We compare both modes on the RDCN scenario and
on the incast microbenchmark — each a one-axis declarative grid over
``cc_params``.
"""

from benchharness import emit, fmt_kb, grid_sweep, once

from repro.experiments.rdcn import scaled_rdcn
from repro.units import MSEC

MODES = {"per-ack": False, "once-per-rtt": True}


def run_modes(scenario, base, persist):
    sweep = grid_sweep(
        scenario,
        grid={"cc_params": [{"once_per_rtt": flag} for flag in MODES.values()]},
        base=base,
        persist=persist,
    )
    return dict(zip(MODES, (cell.result.raw for cell in sweep.cells)))


def test_ablation_update_interval_rdcn(benchmark):
    results = once(
        benchmark,
        lambda: run_modes(
            "rdcn",
            base=dict(
                algorithm="powertcp", params=scaled_rdcn(), duration_ns=4 * MSEC
            ),
            persist="ablation_update_interval_rdcn",
        ),
    )
    lines = [
        f"{'mode':>14s} {'circuit-util':>12s} {'peak-VOQ':>10s} {'p99 q-lat':>12s}"
    ]
    for name, r in results.items():
        lines.append(
            f"{name:>14s} {r.circuit_utilization:12.2f} "
            f"{fmt_kb(r.peak_voq_bytes()):>10s} "
            f"{r.tail_queuing_latency_ns/1000:10.1f}us"
        )
    lines.append("")
    lines.append("expectation: once-per-RTT is the paper's RDCN setting; both")
    lines.append("modes fill the circuit, per-ACK reacts marginally faster")
    emit("ablation_update_interval_rdcn", lines)

    for r in results.values():
        assert r.circuit_utilization > 0.6


def test_ablation_update_interval_incast(benchmark):
    results = once(
        benchmark,
        lambda: run_modes(
            "incast",
            base=dict(algorithm="powertcp", fanout=10, duration_ns=4 * MSEC),
            persist="ablation_update_interval_incast",
        ),
    )
    lines = [
        f"{'mode':>14s} {'peakQ':>10s} {'settledQ':>10s} {'burst-util':>10s}"
    ]
    for name, r in results.items():
        lines.append(
            f"{name:>14s} {fmt_kb(r.peak_qlen_bytes):>10s} "
            f"{fmt_kb(r.mean_late_qlen()):>10s} {r.burst_utilization():10.2f}"
        )
    emit("ablation_update_interval_incast", lines)

    assert results["per-ack"].burst_utilization() > 0.9
    assert len(results["once-per-rtt"].burst_fcts_ns) == 10

"""Bench-suite plumbing: replay emitted figure series after capture ends.

pytest captures file descriptors during test execution, so the per-figure
result tables produced by :func:`benchharness.emit` would be invisible in
``pytest benchmarks/ --benchmark-only`` output.  The terminal-summary hook
runs after capture is torn down: everything emitted during the session is
printed there (and therefore lands in ``bench_output.txt`` when teed).
"""

import benchharness


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not benchharness.SESSION_EMISSIONS:
        return
    terminalreporter.write_sep("=", "regenerated paper figures (series)")
    for name, text in benchharness.SESSION_EMISSIONS:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", name)
        for line in text.splitlines():
            terminalreporter.write_line(line)

"""Fig. 3 — phase portraits: trajectories from initial states to equilibrium.

Paper claims reproduced (100 Gbps bottleneck, 20 µs base RTT):

* 3a voltage-based CC: unique equilibrium, but throughput loss on almost
  every trajectory (overreaction below the BDP line);
* 3b current-based CC: no unique equilibrium (final state depends on the
  initial state);
* 3c power-based CC: unique equilibrium, accurate control, no loss.
"""

import pytest

from benchharness import emit, once

from repro.fluid.laws import GRADIENT_LAW, POWER_LAW, QUEUE_LAW
from repro.fluid.model import FluidParams
from repro.fluid.phase import phase_portrait, phase_portrait_grid


def params():
    p = FluidParams()  # paper's example: 100 Gbps, 20 us
    p.beta_bytes = 0.01 * p.bdp_bytes
    return p


def run_all():
    return {
        law.name: phase_portrait(law, params())
        for law in (QUEUE_LAW, GRADIENT_LAW, POWER_LAW)
    }


def test_fig3_phase_portraits(benchmark):
    portraits = once(benchmark, run_all)
    p = params()
    lines = [
        f"BDP = {p.bdp_bytes/1000:.0f}KB, beta = {p.beta_bytes/1000:.1f}KB",
        f"{'law':14s} {'eq-spread':>10s} {'worst-loss':>11s} {'frac-loss':>10s}  final windows (xBDP)",
    ]
    for name, portrait in portraits.items():
        finals = ", ".join(f"{w / p.bdp_bytes:.2f}" for w in portrait.final_windows)
        lines.append(
            f"{name:14s} {portrait.equilibrium_spread():10.3f} "
            f"{portrait.worst_throughput_loss():11.3f} "
            f"{portrait.fraction_with_loss():10.2f}  [{finals}]"
        )
    lines.append("")
    lines.append("paper: 3a voltage unique-eq + loss; 3b current no unique eq;")
    lines.append("       3c power unique-eq + no loss")
    emit("fig3_phase_portraits", lines)

    voltage = portraits["queue-length"]
    current = portraits["rtt-gradient"]
    power = portraits["power"]
    assert voltage.equilibrium_spread() < 0.05
    assert voltage.fraction_with_loss() > 0.5
    assert current.equilibrium_spread() > 0.5
    assert power.equilibrium_spread() < 0.05
    assert power.fraction_with_loss() == 0.0


def test_fig3_grid_mode_matches_scalar():
    # Grid mode: the numpy-vectorized sweep must reproduce the scalar
    # trajectories bit-for-bit (the vectorized module's equivalence
    # contract), so the portrait diagnostics are interchangeable.
    pytest.importorskip("numpy")
    p = params()
    for law in (QUEUE_LAW, GRADIENT_LAW, POWER_LAW):
        scalar = phase_portrait(law, p)
        grid = phase_portrait_grid(law, p)
        for s, g in zip(scalar.traces, grid.traces):
            assert s.times_s == g.times_s
            assert s.window_bytes == g.window_bytes
            assert s.queue_bytes == g.queue_bytes
            assert s.inflight_bytes == g.inflight_bytes
        assert scalar.equilibrium_spread() == grid.equilibrium_spread()
        assert scalar.worst_throughput_loss() == grid.worst_throughput_loss()

"""§2 motivation benches: the standing-queue problem and multi-bottleneck.

Not a numbered figure, but the executable form of the paper's §2.2 and
§3.5 arguments:

* loss-based CC (NewReno/CUBIC) and ECN-based CC (DCTCP) must hold a
  standing queue to find capacity, violating the Eq. 1 equilibrium that
  PowerTCP satisfies;
* with multiple bottlenecks, INT-based PowerTCP reacts to the most-
  congested hop while delay-based θ-PowerTCP reacts to the *sum* of
  queueing delays and underperforms.
"""

from benchharness import emit, fmt_kb, grid_sweep, once

from repro.experiments.driver import FlowDriver
from repro.sim.engine import Simulator
from repro.sim.tracing import PortProbe
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.units import GBPS, MSEC, USEC

ALGOS = ["powertcp", "dctcp", "newreno", "cubic"]


def run_standing_queue(algorithm):
    sim = Simulator()
    net = build_dumbbell(
        sim,
        DumbbellParams(
            left_hosts=2,
            right_hosts=1,
            host_bw_bps=10 * GBPS,
            bottleneck_bw_bps=10 * GBPS,
            buffer_bytes=200_000,
        ),
    )
    driver = FlowDriver(net, algorithm)
    for src in range(2):
        driver.start_flow(src, 2, 10 ** 10, at_ns=0)
    probe = PortProbe(sim, net.port("bottleneck"), 20 * USEC).start()
    driver.run(until_ns=20 * MSEC)
    settled = probe.qlen_bytes[len(probe.qlen_bytes) // 2 :]
    thr = probe.throughput_bps[len(probe.throughput_bps) // 2 :]
    return {
        "mean_queue": sum(settled) / len(settled),
        "max_queue": max(probe.qlen_bytes),
        "throughput": sum(thr) / len(thr),
        "drops": net.total_drops(),
    }


def test_standing_queue_taxonomy(benchmark):
    results = once(
        benchmark, lambda: {algo: run_standing_queue(algo) for algo in ALGOS}
    )
    lines = [
        f"{'algorithm':>10s} {'settled-Q':>10s} {'max-Q':>10s} "
        f"{'throughput':>11s} {'drops':>6s}"
    ]
    for algo, r in results.items():
        lines.append(
            f"{algo:>10s} {fmt_kb(r['mean_queue']):>10s} "
            f"{fmt_kb(r['max_queue']):>10s} {r['throughput']/1e9:10.2f}G "
            f"{r['drops']:>6d}"
        )
    lines.append("")
    lines.append("paper §2.2/App.C: NewReno oscillates against the buffer;")
    lines.append("DCTCP stands around its marking threshold; PowerTCP holds")
    lines.append("Eq. 1's near-zero queue at full throughput")
    emit("motivation_standing_queue", lines)

    power = results["powertcp"]
    assert power["mean_queue"] < 10_000
    assert power["throughput"] > 9e9
    for lossy in ("newreno", "cubic"):
        assert results[lossy]["mean_queue"] > 3 * max(power["mean_queue"], 1_000)
    assert results["dctcp"]["mean_queue"] > power["mean_queue"]


def run_parking_lot():
    """§3.5 chain via the registered `multi_bottleneck` scenario — its
    defaults *are* this bench's historical config (2 segments, 10G hosts,
    [10G, 5G] links, long flows, 20 ms horizon)."""
    sweep = grid_sweep(
        "multi_bottleneck",
        grid={"algorithm": ["powertcp", "theta-powertcp", "hpcc"]},
        base=dict(seed=1),
        persist="motivation_multi_bottleneck",
    )
    out = {}
    for cell in sweep.cells:
        raw = cell.result.raw
        out[cell.params["algorithm"]] = {
            "e2e_gbps": raw.e2e_goodput_bps / 1e9,
            "cross0_gbps": raw.cross_goodput_bps[0] / 1e9,
            "cross1_gbps": raw.cross_goodput_bps[1] / 1e9,
            "link1_maxq": raw.link_peak_qlen_bytes[1],
        }
    return out


def test_multi_bottleneck(benchmark):
    results = once(benchmark, run_parking_lot)
    lines = [
        f"{'algorithm':>15s} {'e2e':>7s} {'cross0':>7s} {'cross1':>7s} {'link1-maxQ':>11s}"
    ]
    for algo, r in results.items():
        lines.append(
            f"{algo:>15s} {r['e2e_gbps']:6.2f}G {r['cross0_gbps']:6.2f}G "
            f"{r['cross1_gbps']:6.2f}G {fmt_kb(r['link1_maxq']):>11s}"
        )
    lines.append("")
    lines.append("paper §3.5: INT reacts to the most-bottlenecked hop; RTT")
    lines.append("reacts to the sum of delays, shrinking the e2e flow's share")
    emit("motivation_multi_bottleneck", lines)

    assert results["powertcp"]["e2e_gbps"] > results["theta-powertcp"]["e2e_gbps"]

"""Fig. 4 — incast reaction: throughput + queue time series per algorithm.

Top row: 10:1 incast; bottom row: large fan-in (paper 255:1; scaled here
to 64:1 for the pure-Python event budget — the qualitative separation is
identical).  Claims reproduced:

* PowerTCP/θ-PowerTCP reach near-zero queues without losing throughput;
* HPCC loses throughput after mitigating the incast;
* TIMELY controls neither;
* HOMA sustains throughput but not queue length.
"""

from benchharness import emit, fmt_kb, grid_sweep, once

from repro.units import MSEC

ALGOS = ["powertcp", "theta-powertcp", "hpcc", "timely", "dcqcn", "homa"]


def run_fanout(fanout, burst_bytes, duration_ns):
    sweep = grid_sweep(
        "incast",
        grid={"algorithm": ALGOS},
        base=dict(fanout=fanout, burst_bytes=burst_bytes, duration_ns=duration_ns),
    )
    return {cell.params["algorithm"]: cell.result.raw for cell in sweep.cells}


def summarize(name, results):
    lines = [
        f"{'algorithm':>15s} {'peakQ':>10s} {'settledQ':>10s} "
        f"{'burst-util':>10s} {'post-dip':>9s} {'done':>6s} {'drops':>6s}"
    ]
    for algo, r in results.items():
        lines.append(
            f"{algo:>15s} {fmt_kb(r.peak_qlen_bytes):>10s} "
            f"{fmt_kb(r.mean_late_qlen()):>10s} "
            f"{r.burst_utilization():10.2f} {r.post_incast_throughput_dip():9.2f} "
            f"{len(r.burst_fcts_ns):>4d}/{r.fanout:<3d} {r.drops:>4d}"
        )
    lines.append("")
    lines.append("paper: PowerTCP near-zero settled queue + no throughput dip;")
    lines.append("       HPCC dips after mitigation; TIMELY uncontrolled queue;")
    lines.append("       HOMA holds throughput but parks queue during burst")
    emit(name, lines)


def test_fig4_10to1(benchmark):
    results = once(benchmark, lambda: run_fanout(10, 200_000, 4 * MSEC))
    summarize("fig4_top_10to1", results)
    assert results["powertcp"].mean_late_qlen() < 2_000
    assert results["powertcp"].burst_utilization() > 0.95
    assert (
        results["powertcp"].burst_utilization()
        >= results["hpcc"].burst_utilization()
    )
    assert results["timely"].mean_late_qlen() > results["powertcp"].mean_late_qlen()


def test_fig4_large_fanin(benchmark):
    results = once(benchmark, lambda: run_fanout(64, 60_000, 8 * MSEC))
    summarize("fig4_bottom_large_fanin", results)
    power = results["powertcp"]
    assert len(power.burst_fcts_ns) == 64
    assert power.mean_late_qlen() < 5_000
    # Near-zero queues without losing throughput, even at large fan-in.
    assert power.burst_utilization() > 0.9

"""Ablation — the additive-increase β = HostBw·τ/N.

Appendix A: the equilibrium queue is β̂ (the sum of β over flows at the
bottleneck), so N controls the standing queue / convergence-speed
trade-off.  We sweep N (``expected_flows``) on the web-search workload
and report tail slowdowns and buffer occupancy.
"""

from benchharness import emit, grid_sweep, once

from repro.analysis.stats import percentile
from repro.units import MSEC

NS = [8, 16, 32, 64, 128]
SCALE = 1 / 16
PCT = 99.0


def run_all():
    sweep = grid_sweep(
        "websearch",
        grid={"cc_params": [{"expected_flows": n} for n in NS]},
        base=dict(
            algorithm="powertcp",
            load=0.6,
            duration_ns=20 * MSEC,
            drain_ns=40 * MSEC,
            size_scale=SCALE,
            max_flows=400,
            seed=1,
        ),
        persist="ablation_beta",
    )
    return {
        cell.params["cc_params"]["expected_flows"]: cell.result.raw
        for cell in sweep.cells
    }


def test_ablation_beta(benchmark):
    results = once(benchmark, run_all)
    lines = [
        f"{'N':>5s} {'beta=BDP/N':>11s} {'p99 short':>10s} {'p99 long':>10s} "
        f"{'p99 buffer':>11s}"
    ]
    for n, r in results.items():
        s = r.fct_summary(pct=PCT)
        buf = percentile(r.buffer_samples_bytes, 99)
        lines.append(
            f"{n:>5d} {'BDP/' + str(n):>11s} "
            f"{s.short if s.short else float('nan'):10.2f} "
            f"{s.long if s.long else float('nan'):10.2f} {buf:11.0f}"
        )
    lines.append("")
    lines.append("expectation: larger N -> smaller standing queue (better")
    lines.append("short-flow tails, lower buffers) at slightly slower ramp")
    emit("ablation_beta", lines)

    small_n = results[8]
    large_n = results[128]
    assert percentile(large_n.buffer_samples_bytes, 99) <= percentile(
        small_n.buffer_samples_bytes, 99
    )

"""Fig. 2 — reaction curves of the control-law taxonomy.

Paper claims reproduced here:

* 2a: voltage-based CC is oblivious to the queue buildup rate (flat),
  current-based CC reacts linearly (MD = 1 + rate).
* 2b: current-based CC is oblivious to queue length (flat), voltage-based
  CC reacts linearly.
* 2c: voltage cannot distinguish case-2 from case-3; current cannot
  distinguish case-1 from case-3; power separates all three.
"""

from benchharness import emit, once

from repro.fluid.reaction import (
    decrease_vs_buildup_rate,
    decrease_vs_queue_length,
    three_case_comparison,
)
from repro.units import GBPS

B_BPS = 100 * GBPS / 8.0  # bytes/s
TAU = 20e-6
BDP = B_BPS * TAU


def test_fig2a_buildup_rate(benchmark):
    rates = [0, 1, 2, 3, 4, 5, 6, 7, 8]

    def run():
        return decrease_vs_buildup_rate(
            bandwidth_Bps=B_BPS,
            tau_s=TAU,
            queue_bytes=0.5 * BDP,
            rate_multiples=rates,
        )

    series = once(benchmark, run)
    lines = ["rate(xB)  queue/delay-MD  rtt-gradient-MD"]
    for i, rate in enumerate(rates):
        lines.append(
            f"{rate:8.1f}  {series['queue-length'][i]:14.2f}  "
            f"{series['rtt-gradient'][i]:15.2f}"
        )
    emit("fig2a_md_vs_buildup_rate", lines)
    voltage = series["queue-length"]
    current = series["rtt-gradient"]
    assert max(voltage) == min(voltage)  # voltage oblivious to rate
    assert current[-1] == 9.0  # 1 + 8x


def test_fig2b_queue_length(benchmark):
    queue_fracs = [0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0]

    def run():
        return decrease_vs_queue_length(
            bandwidth_Bps=B_BPS,
            tau_s=TAU,
            queue_lengths_bytes=[f * BDP for f in queue_fracs],
        )

    series = once(benchmark, run)
    lines = ["queue(xBDP)  queue/delay-MD  rtt-gradient-MD"]
    for i, frac in enumerate(queue_fracs):
        lines.append(
            f"{frac:11.2f}  {series['queue-length'][i]:14.2f}  "
            f"{series['rtt-gradient'][i]:15.2f}"
        )
    emit("fig2b_md_vs_queue_length", lines)
    assert max(series["rtt-gradient"]) == min(series["rtt-gradient"])
    assert series["queue-length"][-1] == 5.0  # 1 + 4 BDP


def test_fig2c_three_cases(benchmark):
    cases = once(
        benchmark,
        lambda: three_case_comparison(bandwidth_Bps=B_BPS, tau_s=TAU),
    )
    lines = [f"{'case':45s} {'voltage':>8s} {'current':>8s} {'power':>8s}"]
    for c in cases:
        lines.append(
            f"{c.label:45s} {c.voltage:8.2f} {c.current:8.2f} {c.power:8.2f}"
        )
    lines.append("")
    lines.append("paper claim: voltage(case2)==voltage(case3); "
                 "current(case1)==current(case3); power separates all three")
    emit("fig2c_three_cases", lines)
    c1, c2, c3 = cases
    assert c2.voltage == c3.voltage
    assert c1.current == c3.current
    assert len({round(c.power, 9) for c in cases}) == 3


def test_fig2_grid_mode_matches_scalar():
    # Grid mode: the control-law lambdas are pure arithmetic, so one
    # vectorized multiplicative_factor call over the whole sweep must
    # equal the scalar per-point series exactly.
    np = __import__("pytest").importorskip("numpy")
    from repro.fluid.laws import GRADIENT_LAW, QUEUE_LAW

    rates = [0, 1, 2, 3, 4, 5, 6, 7, 8]
    scalar = decrease_vs_buildup_rate(
        bandwidth_Bps=B_BPS, tau_s=TAU,
        queue_bytes=0.5 * BDP, rate_multiples=rates,
    )
    qdot = np.array(rates, dtype=np.float64) * B_BPS
    for law in (QUEUE_LAW, GRADIENT_LAW):
        vec = law.multiplicative_factor(0.5 * BDP, qdot, B_BPS, B_BPS, TAU)
        # A law blind to the swept variable yields a scalar — broadcast it.
        vec = np.broadcast_to(np.asarray(vec), qdot.shape)
        assert vec.tolist() == scalar[law.name]

    fracs = [0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0]
    scalar = decrease_vs_queue_length(
        bandwidth_Bps=B_BPS, tau_s=TAU,
        queue_lengths_bytes=[f * BDP for f in fracs],
    )
    q = np.array([f * BDP for f in fracs], dtype=np.float64)
    for law in (QUEUE_LAW, GRADIENT_LAW):
        vec = law.multiplicative_factor(q, 0.0, B_BPS, B_BPS, TAU)
        vec = np.broadcast_to(np.asarray(vec), q.shape)
        assert vec.tolist() == scalar[law.name]

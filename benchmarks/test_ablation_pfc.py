"""Ablation — lossy (Dynamic Thresholds) vs lossless (PFC) fabric.

The paper's deployment context is RDMA over lossless Ethernet; the main
benches substitute generously sized lossy buffers (go-back-N recovers the
rare drop).  This ablation validates the substitution: under a severe
incast with a deliberately small buffer, PFC eliminates drops entirely,
and PowerTCP's behaviour (queue control, completion) is equivalent in
both modes — i.e. the substitution does not change who wins.

This bench stays on the plain ``once`` harness (not ``grid_sweep``): the
PFC watermark wiring (``enable_pfc`` on a hand-built dumbbell) lives
outside any registered scenario's config surface.
"""

from benchharness import emit, fmt_kb, once

from repro.experiments.driver import FlowDriver
from repro.sim.engine import Simulator
from repro.sim.pfc import enable_pfc
from repro.sim.tracing import PortProbe
from repro.topology.dumbbell import DumbbellParams, build_dumbbell
from repro.units import GBPS, MSEC, USEC


def run(algorithm, with_pfc, buffer_bytes=300_000, fanout=16):
    sim = Simulator()
    net = build_dumbbell(
        sim,
        DumbbellParams(
            left_hosts=fanout + 1,
            right_hosts=1,
            host_bw_bps=10 * GBPS,
            bottleneck_bw_bps=10 * GBPS,
            buffer_bytes=buffer_bytes,
        ),
    )
    if with_pfc:
        enable_pfc(net, high_fraction=0.2, low_fraction=0.1)
    driver = FlowDriver(net, algorithm)
    receiver = fanout + 1
    driver.start_flow(0, receiver, 10 ** 10, at_ns=0, tag="long")
    bursts = [
        driver.start_flow(1 + i, receiver, 100_000, at_ns=150 * USEC)
        for i in range(fanout)
    ]
    probe = PortProbe(sim, net.port("bottleneck"), 10 * USEC).start()
    driver.run(until_ns=6 * MSEC)
    settled = probe.qlen_bytes[len(probe.qlen_bytes) // 2 :]
    return {
        "drops": net.total_drops(),
        "done": sum(1 for f in bursts if f.completed),
        "fanout": fanout,
        "peak_q": net.port("bottleneck").max_qlen_bytes,
        "settled_q": sum(settled) / len(settled),
        "pauses": sum(
            c.pause_events for c in net.extras.get("pfc_controllers", [])
        ),
    }


def test_ablation_pfc(benchmark):
    def run_all():
        out = {}
        for algo in ("powertcp", "hpcc"):
            for mode, with_pfc in (("lossy", False), ("pfc", True)):
                out[(algo, mode)] = run(algo, with_pfc)
        return out

    results = once(benchmark, run_all)
    lines = [
        f"{'algo/fabric':>18s} {'drops':>6s} {'pauses':>7s} {'peakQ':>10s} "
        f"{'settledQ':>10s} {'done':>7s}"
    ]
    for (algo, mode), r in results.items():
        lines.append(
            f"{algo + '/' + mode:>18s} {r['drops']:>6d} {r['pauses']:>7d} "
            f"{fmt_kb(r['peak_q']):>10s} {fmt_kb(r['settled_q']):>10s} "
            f"{r['done']:>3d}/{r['fanout']:<3d}"
        )
    lines.append("")
    lines.append("expectation: PFC removes drops without changing PowerTCP's")
    lines.append("queue control — validating the lossy-buffer substitution")
    emit("ablation_pfc", lines)

    for algo in ("powertcp", "hpcc"):
        assert results[(algo, "pfc")]["drops"] == 0
        assert results[(algo, "pfc")]["done"] == results[(algo, "pfc")]["fanout"]
    # PowerTCP's settled queue stays near zero in both fabrics.
    assert results[("powertcp", "lossy")]["settled_q"] < 10_000
    assert results[("powertcp", "pfc")]["settled_q"] < 10_000

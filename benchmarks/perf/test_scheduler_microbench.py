"""Microbenchmark: binary heap vs calendar queue across pending-set depths.

The simulator can run on either scheduler (``Simulator(scheduler=...)``).
Their asymptotics differ — heapq is O(log n) per op at any depth, the
calendar queue is amortized O(1) once events spread across epochs — so
the crossover depth should be *measured*, not guessed.  This file both
smoke-tests the microbench harness under tier-1 (tiny depths, no timing
assertions) and, when run directly, prints the full depth sweep that the
README's crossover guidance quotes:

    PYTHONPATH=src python benchmarks/perf/test_scheduler_microbench.py

The workload is hold-model churn: seed ``depth`` pending events, then
pop the earliest and push a replacement at ``now + random hold`` for
``ops`` iterations, which is exactly the steady-state shape of the
simulator's event loop (packet finish events replace themselves).
"""

import random
import time

from repro.sim.engine import CalendarQueue
import heapq


def _run_heap(depth, ops, holds):
    heap = []
    seq = 0
    now = 0
    for _ in range(depth):
        heapq.heappush(heap, (now + holds[seq % len(holds)], seq, None, ()))
        seq += 1
    start = time.perf_counter()
    for i in range(ops):
        now = heapq.heappop(heap)[0]
        heapq.heappush(heap, (now + holds[(seq + i) % len(holds)], seq + i, None, ()))
    return time.perf_counter() - start


def _run_calendar(depth, ops, holds):
    cal = CalendarQueue()
    seq = 0
    now = 0
    for _ in range(depth):
        cal.push((now + holds[seq % len(holds)], seq, None, ()))
        seq += 1
    start = time.perf_counter()
    for i in range(ops):
        now = cal.pop()[0]
        cal.push((now + holds[(seq + i) % len(holds)], seq + i, None, ()))
    return time.perf_counter() - start


def sweep(depths, ops=50_000, seed=7):
    """Return [(depth, heap_s, calendar_s, ratio)] for the hold-model churn."""
    rng = random.Random(seed)
    # hold times comparable to packet serialization+propagation: most
    # events land a few epochs ahead of now (calendar width is 4096 ns)
    holds = [rng.randrange(200, 40_000) for _ in range(1024)]
    rows = []
    for depth in depths:
        heap_s = _run_heap(depth, ops, holds)
        cal_s = _run_calendar(depth, ops, holds)
        rows.append((depth, heap_s, cal_s, heap_s / cal_s))
    return rows


def format_sweep(rows, ops):
    lines = [f"hold-model churn, {ops} pop+push ops per cell"]
    lines.append(f"{'depth':>8s} {'heap(s)':>10s} {'calendar(s)':>12s} {'heap/cal':>9s}")
    for depth, heap_s, cal_s, ratio in rows:
        lines.append(f"{depth:8d} {heap_s:10.4f} {cal_s:12.4f} {ratio:9.2f}x")
    return "\n".join(lines)


def test_microbench_harness_runs():
    # Tier-1 smoke: tiny depths, few ops, shape-only — CI clocks are noise.
    rows = sweep([64, 512], ops=2_000)
    assert [r[0] for r in rows] == [64, 512]
    for _, heap_s, cal_s, ratio in rows:
        assert heap_s > 0 and cal_s > 0 and ratio > 0


def test_schedulers_agree_on_churn_order():
    # Same churn stream through both schedulers must pop identical
    # (time, seq) sequences — the parity contract the microbench relies
    # on to be an apples-to-apples comparison.
    rng = random.Random(13)
    heap, cal = [], CalendarQueue()
    seq = 0
    for _ in range(300):
        entry = (rng.randrange(0, 1_000_000), seq, None, ())
        heapq.heappush(heap, entry)
        cal.push(entry)
        seq += 1
    for i in range(600):
        a = heapq.heappop(heap)
        b = cal.pop()
        assert a == b, i
        entry = (a[0] + rng.randrange(1, 30_000), seq, None, ())
        heapq.heappush(heap, entry)
        cal.push(entry)
        seq += 1


if __name__ == "__main__":
    OPS = 200_000
    rows = sweep([16, 64, 256, 1024, 4096, 16384, 65536], ops=OPS)
    print(format_sweep(rows, OPS))

"""Smoke test of the tracked perf macro-benchmark suite.

Runs the *tiny* grid (the same one the CI perf-smoke job executes) and
checks the BENCH document's shape, so `python -m repro perf` can never
rot silently.  Full-scale timing runs are manual / CI-artifact territory
(`python -m repro perf`), not tier-1 material.
"""

import json

from repro.perf import (
    PERF_CASES,
    append_history,
    case_names,
    load_bench,
    regression_warnings,
    run_perf,
    write_bench,
)

#: PR 3's original engine-default macro workloads
BASE_CASES = ["incast", "websearch_fct", "permutation"]


def test_case_grid_is_wellformed():
    assert case_names() == BASE_CASES + [
        "incast_batched",
        "websearch_batched",
        "permutation_batched",
        "incast_compiled",
        "websearch_compiled",
        "permutation_compiled",
        "storm",
        "storm_calendar",
        "fluid_grid",
    ]
    for case in PERF_CASES.values():
        assert case.overrides, case.name
        assert case.tiny, case.name
        if case.kind == "scenario":
            # tiny grids must be strictly smaller in simulated duration
            assert case.tiny["duration_ns"] <= case.overrides["duration_ns"]
    # engine variants must rerun the *same workload* as their base case,
    # differing only in engine configuration — that is what makes their
    # compare-by-workload speedups honest
    for variant, base in (
        ("incast_batched", "incast"),
        ("websearch_batched", "websearch_fct"),
        ("permutation_batched", "permutation"),
        ("incast_compiled", "incast"),
        ("websearch_compiled", "websearch_fct"),
        ("permutation_compiled", "permutation"),
        ("storm_calendar", "storm"),
    ):
        assert PERF_CASES[variant].scenario == PERF_CASES[base].scenario
        assert PERF_CASES[variant].overrides == PERF_CASES[base].overrides
        assert PERF_CASES[variant].tiny == PERF_CASES[base].tiny
        assert PERF_CASES[variant].engine, variant
        assert not PERF_CASES[base].engine, base


def test_tiny_grid_runs_and_reports(tmp_path):
    doc = run_perf(tiny=True, repeats=1)
    assert doc["schema"] == 1
    assert doc["tiny"] is True
    names = [c["case"] for c in doc["cases"]]
    assert names == case_names()
    for case in doc["cases"]:
        if "skipped" in case:
            # fluid_grid without numpy, or *_compiled without the
            # optional C extension — never a red grid
            assert case["case"] == "fluid_grid" or case["case"].endswith(
                "_compiled"
            ), case
            continue
        assert case["events_processed"] > 0
        assert case["events_per_sec"] > 0
        assert case["wall_time_s"] > 0
        assert case["metrics"], case["case"]  # determinism fingerprint

    path = write_bench(doc, str(tmp_path / "BENCH_perf.json"))
    reloaded = load_bench(path)
    assert reloaded == json.loads(json.dumps(doc))  # JSON-stable


def test_compare_records_speedup(tmp_path):
    doc = run_perf(cases=["websearch_fct"], tiny=True, repeats=1)
    again = run_perf(cases=["websearch_fct"], tiny=True, repeats=1, compare=doc)
    case = again["cases"][0]
    assert case["ref_events_per_sec"] == doc["cases"][0]["events_per_sec"]
    assert case["speedup"] > 0
    # identical simulations: the determinism fingerprint must match
    assert case["metrics"] == doc["cases"][0]["metrics"]


def test_engine_variant_borrows_workload_reference():
    # A reference document that predates the engine variants (PR 3's
    # BENCH_perf.json): the variant must fall back to the same-workload
    # default-config entry, so speedups read engine-on vs engine-off.
    ref = run_perf(cases=["incast"], tiny=True, repeats=1)
    doc = run_perf(cases=["incast_batched"], tiny=True, repeats=1, compare=ref)
    case = doc["cases"][0]
    assert case["engine"] == {"tx_batch_limit": 8}
    assert case["ref_events_per_sec"] == ref["cases"][0]["events_per_sec"]
    assert case["speedup"] > 0


def test_batched_event_count_matches_unbatched():
    # Coalesced accounting: each packet in a train still counts as one
    # event, so events/sec compares honestly across batch configs.  The
    # closed-loop workload itself may diverge slightly (mid-train
    # arrivals see a shorter queue, shifting the odd ECN mark), so the
    # counts agree to a tolerance rather than exactly.
    base = run_perf(cases=["incast"], tiny=True, repeats=1)
    batched = run_perf(cases=["incast_batched"], tiny=True, repeats=1)
    a = base["cases"][0]["events_processed"]
    b = batched["cases"][0]["events_processed"]
    assert abs(a - b) / a < 0.02, (a, b)


def test_calendar_variant_is_bit_identical():
    # The calendar queue preserves (time, seq) order exactly: metrics
    # and event counts must equal the heap run bit-for-bit.
    base = run_perf(cases=["storm"], tiny=True, repeats=1)
    calendar = run_perf(cases=["storm_calendar"], tiny=True, repeats=1)
    assert base["cases"][0]["metrics"] == calendar["cases"][0]["metrics"]
    assert (
        base["cases"][0]["events_processed"]
        == calendar["cases"][0]["events_processed"]
    )


def test_compiled_variant_is_bit_identical_or_skips():
    # The compiled drain preserves (time, seq) order exactly; without
    # the extension the case must skip with a reason, not pass silently.
    compiled = run_perf(cases=["incast_compiled"], tiny=True, repeats=1)
    entry = compiled["cases"][0]
    if "skipped" in entry:
        assert "compiled core unavailable" in entry["skipped"]
        return
    base = run_perf(cases=["incast_batched"], tiny=True, repeats=1)
    # same workload, batching on in both: only the drain loop differs
    assert entry["metrics"] == base["cases"][0]["metrics"]
    assert entry["events_processed"] == base["cases"][0]["events_processed"]


def test_storm_depth_exceeds_auto_crossover():
    # The deep-pending case must actually sit past the documented
    # calendar crossover at full scale (that is its reason to exist) and
    # stay tiny in CI smoke runs.
    from repro.sim.engine import AUTO_CALENDAR_DEPTH

    assert PERF_CASES["storm"].overrides["depth"] >= AUTO_CALENDAR_DEPTH
    assert PERF_CASES["storm"].tiny["depth"] < AUTO_CALENDAR_DEPTH


def test_history_accumulates_snapshots(tmp_path):
    doc = run_perf(cases=["incast"], tiny=True, repeats=1)
    path = str(tmp_path / "perf_history.json")
    append_history(doc, path, label="pr-a")
    append_history(doc, path, label="pr-b")
    with open(path) as handle:
        history = json.load(handle)
    assert [s["label"] for s in history["snapshots"]] == ["pr-a", "pr-b"]
    assert history["snapshots"][0]["cases"][0]["case"] == "incast"
    # perf_trend expands history files transparently
    from repro.analysis.results import perf_trend

    trend = perf_trend([path], include_tiny=True)
    assert [e["label"] for e in trend["incast"]] == ["pr-a", "pr-b"]


def test_regression_warnings_fire_only_below_threshold():
    entry = {
        "case": "incast",
        "events_per_sec": 89_000.0,
        "ref_events_per_sec": 100_000.0,
    }
    assert regression_warnings({"cases": [entry]})  # 11% below: warn
    entry["events_per_sec"] = 95_000.0
    assert not regression_warnings({"cases": [entry]})  # within 10%
    # fluid_grid's in-run scalar reference is not a regression signal
    assert not regression_warnings(
        {
            "cases": [
                {
                    "case": "fluid_grid",
                    "events_per_sec": 1.0,
                    "ref_events_per_sec": 100.0,
                }
            ]
        }
    )


def test_unknown_case_rejected():
    import pytest

    with pytest.raises(ValueError):
        run_perf(cases=["nope"])

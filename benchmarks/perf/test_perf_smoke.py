"""Smoke test of the tracked perf macro-benchmark suite.

Runs the *tiny* grid (the same one the CI perf-smoke job executes) and
checks the BENCH document's shape, so `python -m repro perf` can never
rot silently.  Full-scale timing runs are manual / CI-artifact territory
(`python -m repro perf`), not tier-1 material.
"""

import json

from repro.perf import (
    PERF_CASES,
    case_names,
    load_bench,
    run_perf,
    write_bench,
)


def test_case_grid_is_wellformed():
    assert case_names() == ["incast", "websearch_fct", "permutation"]
    for case in PERF_CASES.values():
        assert case.overrides, case.name
        assert case.tiny, case.name
        # tiny grids must be strictly smaller in simulated duration
        assert case.tiny["duration_ns"] <= case.overrides["duration_ns"]


def test_tiny_grid_runs_and_reports(tmp_path):
    doc = run_perf(tiny=True, repeats=1)
    assert doc["schema"] == 1
    assert doc["tiny"] is True
    names = [c["case"] for c in doc["cases"]]
    assert names == case_names()
    for case in doc["cases"]:
        assert case["events_processed"] > 0
        assert case["events_per_sec"] > 0
        assert case["wall_time_s"] > 0
        assert case["metrics"], case["case"]  # determinism fingerprint

    path = write_bench(doc, str(tmp_path / "BENCH_perf.json"))
    reloaded = load_bench(path)
    assert reloaded == json.loads(json.dumps(doc))  # JSON-stable


def test_compare_records_speedup(tmp_path):
    doc = run_perf(cases=["websearch_fct"], tiny=True, repeats=1)
    again = run_perf(cases=["websearch_fct"], tiny=True, repeats=1, compare=doc)
    case = again["cases"][0]
    assert case["ref_events_per_sec"] == doc["cases"][0]["events_per_sec"]
    assert case["speedup"] > 0
    # identical simulations: the determinism fingerprint must match
    assert case["metrics"] == doc["cases"][0]["metrics"]


def test_unknown_case_rejected():
    import pytest

    with pytest.raises(ValueError):
        run_perf(cases=["nope"])

"""Shared helpers for the per-figure benchmark targets.

Every bench regenerates one table/figure of the paper and *emits* the
series it produces — both to the real stdout (so it survives pytest's
capture into ``bench_output.txt``) and to ``benchmarks/results/<name>.txt``
for later inspection.  EXPERIMENTS.md records the paper-vs-measured
comparison of these outputs.
"""

from __future__ import annotations

import os
from typing import Iterable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: blocks emitted during this session, replayed by the conftest's
#: terminal-summary hook (pytest's fd-level capture swallows direct
#: writes during test execution).
SESSION_EMISSIONS = []


def emit(name: str, lines: Iterable[str]) -> None:
    """Record a result block: to results/<name>.txt immediately, and to
    the terminal at session end (see benchmarks/conftest.py)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    SESSION_EMISSIONS.append((name, text))
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def grid_sweep(scenario, grid, base=None, seed=1, persist=None):
    """Run a parameter grid through the shared scenario SweepRunner.

    Runs in-process (``jobs=1``) so every cell's raw experiment result
    stays attached (``cell.result.raw``) for the benches' assertions.
    Pin ``seed`` in ``base`` to bypass per-cell seed derivation when a
    bench must reproduce the experiment module's historical defaults
    (scenarios with a ``seed`` config field would otherwise get derived
    per-cell seeds and drift from the committed series).

    ``persist`` names a results document: the sweep JSON is written to
    ``benchmarks/results/<persist>_sweep.json`` (untracked; regenerated
    by every bench run) so each figure's grid loads back through
    ``repro.analysis.results.ResultSet``.
    """
    from repro.scenarios.sweep import run_sweep

    sweep = run_sweep(scenario, grid, base=base or {}, seed=seed)
    if persist:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        sweep.persist(os.path.join(RESULTS_DIR, f"{persist}_sweep.json"))
    return sweep


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    These are simulations, not microbenchmarks: a single round keeps the
    suite's wall-clock sane while still recording how long each figure
    takes to regenerate.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def fmt_gbps(bps: float) -> str:
    """Format a bandwidth in Gbps."""
    return f"{bps / 1e9:6.2f}G"


def fmt_kb(nbytes: float) -> str:
    """Format a byte count in KB."""
    return f"{nbytes / 1000:8.1f}KB"

"""Fig. 9 (Appendix D) — HOMA fairness at overcommitment levels 1-6.

The paper shows HOMA's bandwidth sharing across four staggered flows for
each overcommitment level; level 1 performed best in their setup (and is
what the main-body figures use).
"""

from benchharness import emit, grid_sweep, once

LEVELS = [1, 2, 3, 4, 5, 6]


def run_all():
    sweep = grid_sweep(
        "fairness",
        grid={"homa_overcommit": LEVELS},
        base=dict(algorithm="homa"),
        persist="fig9_homa_overcommitment",
    )
    return {
        cell.params["homa_overcommit"]: cell.result.raw for cell in sweep.cells
    }


def test_fig9_homa_overcommitment_fairness(benchmark):
    results = once(benchmark, run_all)
    lines = [f"{'OC':>3s}  Jain index per join-epoch (1 flow .. 4 flows)"]
    for oc, r in results.items():
        epochs = "  ".join(f"{j:5.3f}" for j in r.epoch_jain)
        lines.append(f"{oc:>3d}  {epochs}")
    lines.append("")
    lines.append("paper fig 9: HOMA shares bandwidth at every level; higher")
    lines.append("overcommitment admits more concurrent senders")
    emit("fig9_homa_overcommitment", lines)

    for oc, r in results.items():
        assert len(r.epoch_jain) == 4, oc
        # SRPT serves messages; with equal-length flows sharing is coarse,
        # but every level must keep all flows progressing.
        assert all(j > 0.2 for j in r.epoch_jain), oc

"""Ablation — the EWMA parameter γ (paper recommends 0.9).

γ trades reaction speed against noise sensitivity: Theorem 2's time
constant is δt/γ, so small γ converges slowly; γ=1 reacts fastest but
trusts each (noisy) power sample fully.  We sweep γ on the 10:1 incast
and report queue control and throughput.
"""

from benchharness import emit, fmt_kb, grid_sweep, once

from repro.units import MSEC

GAMMAS = [0.3, 0.5, 0.7, 0.9, 1.0]


def run_all():
    sweep = grid_sweep(
        "incast",
        grid={"cc_params": [{"gamma": gamma} for gamma in GAMMAS]},
        base=dict(algorithm="powertcp", fanout=10, duration_ns=4 * MSEC),
        persist="ablation_gamma",
    )
    return {
        cell.params["cc_params"]["gamma"]: cell.result.raw
        for cell in sweep.cells
    }


def test_ablation_gamma(benchmark):
    results = once(benchmark, run_all)
    lines = [
        f"{'gamma':>6s} {'peakQ':>10s} {'settledQ':>10s} {'burst-util':>10s} {'done':>6s}"
    ]
    for gamma, r in results.items():
        lines.append(
            f"{gamma:6.2f} {fmt_kb(r.peak_qlen_bytes):>10s} "
            f"{fmt_kb(r.mean_late_qlen()):>10s} {r.burst_utilization():10.2f} "
            f"{len(r.burst_fcts_ns):>4d}/10"
        )
    lines.append("")
    lines.append("paper: gamma=0.9 recommended — fast convergence without")
    lines.append("noise amplification; the sweep should show gamma>=0.7 keeps")
    lines.append("settled queues near zero with full burst utilization")
    emit("ablation_gamma", lines)

    recommended = results[0.9]
    assert recommended.burst_utilization() > 0.95
    assert recommended.mean_late_qlen() < 2_000
    # Slow gamma still converges (stability holds for all gamma in (0,1]).
    assert len(results[0.3].burst_fcts_ns) == 10

"""Fig. 6 — 99.9-pct FCT slowdown vs flow size, web-search workload.

Paper setting: oversubscribed fat-tree, loads 20 % (6a) and 60 % (6b),
six algorithms.  Scaled here: smaller fat-tree (same 2-tier structure),
flow sizes scaled by 1/16 (bins rescaled symmetrically), and the tail
percentile relaxed to p99 for the bench's flow-count budget (the full
99.9-pct needs ~10x more flows; pass ``max_flows`` higher to get it).

Claims reproduced: PowerTCP (and θ-PowerTCP for short flows) outperform
the baselines on short-flow tails; PowerTCP does not penalize long flows;
θ-PowerTCP deteriorates on medium/long flows; benefits grow with load.
"""

from benchharness import emit, grid_sweep, once

from repro.units import MSEC

ALGOS = ["powertcp", "theta-powertcp", "hpcc", "dcqcn", "timely", "homa"]
SCALE = 1 / 16
PCT = 99.0
FLOWS = 500


def run_load(load):
    # seed pinned to the config default so the series match the
    # pre-registry per-figure loops byte for byte.
    sweep = grid_sweep(
        "websearch",
        grid={"algorithm": ALGOS},
        base=dict(
            load=load,
            duration_ns=25 * MSEC,
            drain_ns=40 * MSEC,
            size_scale=SCALE,
            max_flows=FLOWS,
            seed=1,
        ),
    )
    return {cell.params["algorithm"]: cell.result.raw for cell in sweep.cells}


def summarize(name, results, load):
    lines = [f"web-search @ {load:.0%} load, p{PCT:g} slowdown "
             f"(sizes scaled x{SCALE:g}, bins in paper units)"]
    lines.append(
        f"{'algorithm':>15s} {'short':>8s} {'medium':>8s} {'long':>8s} {'all':>8s} {'done':>9s}"
    )
    for algo, r in results.items():
        s = r.fct_summary(pct=PCT)

        def fmt(v):
            return f"{v:8.2f}" if v is not None else "       -"

        lines.append(
            f"{algo:>15s} {fmt(s.short)} {fmt(s.medium)} {fmt(s.long)} "
            f"{fmt(s.overall)} {s.completed:>4d}/{s.total:<4d}"
        )
    lines.append("")
    lines.append("per-size-bin series (PowerTCP vs HPCC), bin edge -> slowdown:")
    for algo in ("powertcp", "hpcc"):
        bins = results[algo].size_bins(pct=PCT)
        row = "  ".join(
            f"{edge//1000}K:{(f'{v:.1f}' if v is not None else '-')}"
            for edge, v, _count in bins
        )
        lines.append(f"{algo:>15s}  {row}")
    emit(name, lines)


def test_fig6a_20pct_load(benchmark):
    results = once(benchmark, lambda: run_load(0.2))
    summarize("fig6a_websearch_20pct", results, 0.2)
    power = results["powertcp"].fct_summary(pct=PCT)
    hpcc = results["hpcc"].fct_summary(pct=PCT)
    timely = results["timely"].fct_summary(pct=PCT)
    # At low load PowerTCP is at worst comparable to HPCC and clearly
    # better than TIMELY on short flows.
    assert power.short <= hpcc.short * 1.25
    assert power.short <= timely.short


def test_fig6b_60pct_load(benchmark):
    results = once(benchmark, lambda: run_load(0.6))
    summarize("fig6b_websearch_60pct", results, 0.6)
    power = results["powertcp"].fct_summary(pct=PCT)
    hpcc = results["hpcc"].fct_summary(pct=PCT)
    # Paper: at 60% load PowerTCP improves short-flow tails vs HPCC and
    # does not penalize long flows.
    assert power.short <= hpcc.short * 1.1
    assert power.long <= hpcc.long * 1.1

"""Fig. 8 — the reconfigurable-DCN case study.

8a: throughput + circuit-VOQ time series for one ToR pair across rotation
weeks.  8b: 99-percentile per-packet queuing latency versus packet-network
bandwidth.  Claims reproduced:

* reTCP fills the circuit from the first day microsecond (prebuffering)
  but pays order-of-magnitude higher queuing latency, growing with the
  prebuffer (600 µs vs 1800 µs);
* HPCC keeps the VOQ empty but underutilizes the circuit;
* PowerTCP reaches 80-100 % circuit utilization at near-zero VOQ, cutting
  tail latency by >= 5x vs reTCP.

Prebuffer values are the paper's, scaled to the shortened rotation week
(see ``scaled_prebuffer_ns``).
"""

from benchharness import emit, fmt_gbps, fmt_kb, once

from repro.experiments.rdcn import (
    RdcnConfig,
    run_rdcn,
    scaled_prebuffer_ns,
    scaled_rdcn,
)
from repro.units import GBPS, MSEC, USEC

VARIANTS = [
    ("powertcp", 0),
    ("hpcc", 0),
    ("retcp", 600 * USEC),
    ("retcp", 1800 * USEC),
]


def label(algo, paper_pre):
    return f"{algo}-{paper_pre // 1000}us" if paper_pre else algo


def run_variant(algo, paper_pre, packet_bw):
    params = scaled_rdcn(packet_bw_bps=packet_bw)
    pre = scaled_prebuffer_ns(params, paper_pre) if paper_pre else 0
    return run_rdcn(
        RdcnConfig(
            algorithm=algo,
            params=params,
            prebuffer_ns=pre,
            duration_ns=4 * MSEC,
        )
    )


def test_fig8a_timeseries(benchmark):
    results = once(
        benchmark,
        lambda: {
            label(a, p): run_variant(a, p, 25 * GBPS) for a, p in VARIANTS
        },
    )
    lines = [
        f"{'variant':>15s} {'circuit-util':>12s} {'peak-VOQ':>12s} "
        f"{'p99 q-latency':>14s} {'goodput':>9s}"
    ]
    for name, r in results.items():
        lines.append(
            f"{name:>15s} {r.circuit_utilization:12.2f} "
            f"{fmt_kb(r.peak_voq_bytes()):>12s} "
            f"{r.tail_queuing_latency_ns / 1000:12.1f}us "
            f"{fmt_gbps(r.mean_goodput_bps):>9s}"
        )
    power = results["powertcp"]
    lines.append("")
    lines.append("PowerTCP pair-throughput series around its first day (Gbps):")
    window = [
        f"{t//1000}us:{bps/1e9:.0f}"
        for t, bps in zip(power.times_ns, power.pair_throughput_bps)
        if power.day_windows and power.day_windows[0][0] - 50_000
        <= t
        <= power.day_windows[0][1] + 50_000
    ]
    lines.append("  " + " ".join(window[:30]))
    lines.append("")
    lines.append("paper 8a: reTCP = instant fill + high latency; HPCC = low")
    lines.append("queue + low fill; PowerTCP = both high fill and low queue")
    emit("fig8a_rdcn_timeseries", lines)

    assert results["powertcp"].circuit_utilization >= 0.75
    assert results["hpcc"].circuit_utilization < results["powertcp"].circuit_utilization
    assert results["retcp-600us"].circuit_utilization > 0.9
    assert (
        results["powertcp"].peak_voq_bytes()
        < 0.05 * results["retcp-600us"].peak_voq_bytes()
    )


def test_fig8b_tail_latency_vs_packet_bw(benchmark):
    bandwidths = [25 * GBPS, 50 * GBPS]

    def run():
        return {
            (label(a, p), bw): run_variant(a, p, bw)
            for a, p in VARIANTS
            for bw in bandwidths
        }

    matrix = once(benchmark, run)
    lines = ["p99 queuing latency (us) vs packet-network bandwidth"]
    names = [label(a, p) for a, p in VARIANTS]
    lines.append(f"{'pkt-bw':>8s} " + " ".join(f"{n:>15s}" for n in names))
    for bw in bandwidths:
        row = [f"{bw/1e9:6.0f}G "]
        for name in names:
            row.append(f"{matrix[(name, bw)].tail_queuing_latency_ns/1000:15.1f}")
        lines.append(" ".join(row))
    lines.append("")
    lines.append("paper 8b: PowerTCP/HPCC lowest; reTCP-1800us worst; PowerTCP")
    lines.append("improves tail queuing latency by at least 5x vs reTCP")
    emit("fig8b_tail_latency", lines)

    for bw in bandwidths:
        power = matrix[("powertcp", bw)].tail_queuing_latency_ns
        retcp600 = matrix[("retcp-600us", bw)].tail_queuing_latency_ns
        retcp1800 = matrix[("retcp-1800us", bw)].tail_queuing_latency_ns
        assert retcp600 > 2 * power  # paper: >= 5x at full scale
        assert retcp1800 >= retcp600 * 0.9  # more prebuffer, no less latency

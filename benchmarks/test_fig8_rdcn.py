"""Fig. 8 — the reconfigurable-DCN case study.

8a: throughput + circuit-VOQ time series for one ToR pair across rotation
weeks.  8b: 99-percentile per-packet queuing latency versus packet-network
bandwidth.  Claims reproduced:

* reTCP fills the circuit from the first day microsecond (prebuffering)
  but pays order-of-magnitude higher queuing latency, growing with the
  prebuffer (600 µs vs 1800 µs);
* HPCC keeps the VOQ empty but underutilizes the circuit;
* PowerTCP reaches 80-100 % circuit utilization at near-zero VOQ, cutting
  tail latency by >= 5x vs reTCP.

Prebuffer values are the paper's, scaled to the shortened rotation week
(see ``scaled_prebuffer_ns``).  The variant set is not a full product —
prebuffering only applies to reTCP — so each figure runs two declarative
grids over the ``rdcn`` scenario: algorithm x params for the
feedback-based schemes, prebuffer x params for reTCP.
"""

from benchharness import emit, fmt_gbps, fmt_kb, grid_sweep, once

from repro.experiments.rdcn import scaled_prebuffer_ns, scaled_rdcn
from repro.units import GBPS, MSEC, USEC

VARIANTS = [
    ("powertcp", 0),
    ("hpcc", 0),
    ("retcp", 600 * USEC),
    ("retcp", 1800 * USEC),
]
PAPER_PREBUFFERS = [600 * USEC, 1800 * USEC]


def label(algo, paper_pre):
    return f"{algo}-{paper_pre // 1000}us" if paper_pre else algo


def scaled_pre(paper_pre):
    return scaled_prebuffer_ns(scaled_rdcn(), paper_pre)


def run_variants(packet_bw, persist):
    """Both grids at one packet bandwidth -> {variant label: raw result}.

    Each grid gets its own RdcnParams instance: run_rdcn writes the cell's
    prebuffer into params, so the reTCP grid must not alias the object the
    feedback grid persisted.
    """
    feedback = grid_sweep(
        "rdcn",
        grid={"algorithm": ["powertcp", "hpcc"]},
        base=dict(
            duration_ns=4 * MSEC, params=scaled_rdcn(packet_bw_bps=packet_bw)
        ),
        persist=f"{persist}_feedback",
    )
    retcp = grid_sweep(
        "rdcn",
        grid={"prebuffer_ns": [scaled_pre(p) for p in PAPER_PREBUFFERS]},
        base=dict(
            algorithm="retcp",
            duration_ns=4 * MSEC,
            params=scaled_rdcn(packet_bw_bps=packet_bw),
        ),
        persist=f"{persist}_retcp",
    )
    results = {
        cell.params["algorithm"]: cell.result.raw for cell in feedback.cells
    }
    for paper, cell in zip(PAPER_PREBUFFERS, retcp.cells):
        results[label("retcp", paper)] = cell.result.raw
    return results


def test_fig8a_timeseries(benchmark):
    results = once(benchmark, lambda: run_variants(25 * GBPS, "fig8a_rdcn"))
    lines = [
        f"{'variant':>15s} {'circuit-util':>12s} {'peak-VOQ':>12s} "
        f"{'p99 q-latency':>14s} {'goodput':>9s}"
    ]
    for algo, paper in VARIANTS:
        name = label(algo, paper)
        r = results[name]
        lines.append(
            f"{name:>15s} {r.circuit_utilization:12.2f} "
            f"{fmt_kb(r.peak_voq_bytes()):>12s} "
            f"{r.tail_queuing_latency_ns / 1000:12.1f}us "
            f"{fmt_gbps(r.mean_goodput_bps):>9s}"
        )
    power = results["powertcp"]
    lines.append("")
    lines.append("PowerTCP pair-throughput series around its first day (Gbps):")
    window = [
        f"{t//1000}us:{bps/1e9:.0f}"
        for t, bps in zip(power.times_ns, power.pair_throughput_bps)
        if power.day_windows and power.day_windows[0][0] - 50_000
        <= t
        <= power.day_windows[0][1] + 50_000
    ]
    lines.append("  " + " ".join(window[:30]))
    lines.append("")
    lines.append("paper 8a: reTCP = instant fill + high latency; HPCC = low")
    lines.append("queue + low fill; PowerTCP = both high fill and low queue")
    emit("fig8a_rdcn_timeseries", lines)

    assert results["powertcp"].circuit_utilization >= 0.75
    assert results["hpcc"].circuit_utilization < results["powertcp"].circuit_utilization
    assert results["retcp-600us"].circuit_utilization > 0.9
    assert (
        results["powertcp"].peak_voq_bytes()
        < 0.05 * results["retcp-600us"].peak_voq_bytes()
    )


def test_fig8b_tail_latency_vs_packet_bw(benchmark):
    bandwidths = [25 * GBPS, 50 * GBPS]

    def run():
        return {
            (name, bw): r
            for bw in bandwidths
            for name, r in run_variants(
                bw, f"fig8b_latency_{int(bw/1e9)}g"
            ).items()
        }

    matrix = once(benchmark, run)
    lines = ["p99 queuing latency (us) vs packet-network bandwidth"]
    names = [label(a, p) for a, p in VARIANTS]
    lines.append(f"{'pkt-bw':>8s} " + " ".join(f"{n:>15s}" for n in names))
    for bw in bandwidths:
        row = [f"{bw/1e9:6.0f}G "]
        for name in names:
            row.append(f"{matrix[(name, bw)].tail_queuing_latency_ns/1000:15.1f}")
        lines.append(" ".join(row))
    lines.append("")
    lines.append("paper 8b: PowerTCP/HPCC lowest; reTCP-1800us worst; PowerTCP")
    lines.append("improves tail queuing latency by at least 5x vs reTCP")
    emit("fig8b_tail_latency", lines)

    for bw in bandwidths:
        power = matrix[("powertcp", bw)].tail_queuing_latency_ns
        retcp600 = matrix[("retcp-600us", bw)].tail_queuing_latency_ns
        retcp1800 = matrix[("retcp-1800us", bw)].tail_queuing_latency_ns
        assert retcp600 > 2 * power  # paper: >= 5x at full scale
        assert retcp1800 >= retcp600 * 0.9  # more prebuffer, no less latency

"""Fig. 7g/7h — buffer-occupancy CDFs.

7g: web-search at 80 % load — PowerTCP consistently occupies less buffer
and cuts the tail occupancy versus HPCC.  7h: with incast queries layered
on top, PowerTCP and θ-PowerTCP cut the 99-percentile buffer vs HPCC.

Both grids pin ``seed=1`` (the config default) so the sweep reproduces
the historical workload draws exactly.
"""

from benchharness import emit, fmt_kb, grid_sweep, once

from repro.analysis.stats import percentile
from repro.units import MSEC

ALGOS = ["powertcp", "theta-powertcp", "hpcc"]
SCALE = 1 / 16
FLOWS = 400
PCTS = (50, 90, 99, 99.9)


def cdf_rows(results):
    lines = [
        f"{'algorithm':>15s} " + " ".join(f"p{p:<6g}" for p in PCTS) + " (bytes)"
    ]
    for algo, samples in results.items():
        row = " ".join(f"{percentile(samples, p):7.0f}" for p in PCTS)
        lines.append(f"{algo:>15s} {row}")
    return lines


def test_fig7g_buffer_cdf_websearch(benchmark):
    def run():
        sweep = grid_sweep(
            "websearch",
            grid={"algorithm": ALGOS},
            base=dict(
                load=0.8,
                duration_ns=20 * MSEC,
                drain_ns=40 * MSEC,
                size_scale=SCALE,
                max_flows=FLOWS,
                seed=1,
            ),
            persist="fig7g_buffer_cdf_websearch",
        )
        return {
            cell.params["algorithm"]: cell.result.raw.buffer_samples_bytes
            for cell in sweep.cells
        }

    results = once(benchmark, run)
    lines = ["ToR buffer occupancy CDF, web-search @ 80% load"]
    lines += cdf_rows(results)
    lines.append("")
    lines.append("paper 7g: PowerTCP maintains lower occupancy throughout and")
    lines.append("cuts the tail vs HPCC")
    emit("fig7g_buffer_cdf_websearch", lines)

    assert percentile(results["powertcp"], 99) <= percentile(results["hpcc"], 99)


def test_fig7h_buffer_cdf_bursty(benchmark):
    def run():
        sweep = grid_sweep(
            "bursty",
            grid={"algorithm": ALGOS},
            base=dict(
                load=0.8,
                requests_per_duration=16,
                request_size_bytes=2_000_000,
                fanout=8,
                duration_ns=20 * MSEC,
                drain_ns=40 * MSEC,
                size_scale=SCALE,
                max_flows=FLOWS,
                seed=1,
            ),
            persist="fig7h_buffer_cdf_bursty",
        )
        return {
            cell.params["algorithm"]: cell.result.raw.buffer_samples_bytes
            for cell in sweep.cells
        }

    results = once(benchmark, run)
    lines = ["ToR buffer occupancy CDF, web-search @ 80% + 16x 2MB incasts"]
    lines += cdf_rows(results)
    lines.append("")
    lines.append("paper 7h: PowerTCP and theta-PowerTCP reduce the 99-pct")
    lines.append("buffer by ~31% vs HPCC")
    emit("fig7h_buffer_cdf_bursty", lines)

    power_tail = percentile(results["powertcp"], 99)
    hpcc_tail = percentile(results["hpcc"], 99)
    assert power_tail <= hpcc_tail * 1.05

"""Fig. 7c-7f — web-search at 80 % load plus incast queries.

7c/7d sweep the request *rate* (incast frequency) at 2 MB request size;
7e/7f sweep the request *size* at a fixed rate.  Claims reproduced:
PowerTCP improves short-flow tails over HPCC under bursty traffic without
sacrificing long flows; θ-PowerTCP helps short flows but hurts long ones.

Each sub-figure is one declarative grid (algorithm x rate, algorithm x
size) over the ``bursty`` scenario with ``seed=1`` pinned so the sweep
reproduces the historical workload draws exactly.
"""

from benchharness import emit, grid_sweep, once

from repro.units import MSEC

ALGOS = ["powertcp", "theta-powertcp", "hpcc"]
SCALE = 1 / 16
PCT = 99.0
FLOWS = 200

BASE = dict(
    load=0.8,
    fanout=8,
    duration_ns=20 * MSEC,
    drain_ns=40 * MSEC,
    size_scale=SCALE,
    max_flows=FLOWS,
    seed=1,
)


def sweep_matrix(grid, base, axis, persist):
    """Grid -> {(algorithm, axis value): raw bursty result}."""
    sweep = grid_sweep("bursty", grid=grid, base=base, persist=persist)
    return {
        (cell.params["algorithm"], cell.params[axis]): cell.result.raw
        for cell in sweep.cells
    }


def test_fig7cd_request_rate(benchmark):
    rates = [1, 4, 16]

    def run():
        return sweep_matrix(
            grid={"algorithm": ALGOS, "requests_per_duration": rates},
            base=dict(BASE, request_size_bytes=2_000_000),
            axis="requests_per_duration",
            persist="fig7cd_request_rate",
        )

    matrix = once(benchmark, run)
    lines = [f"request-rate sweep @ 2MB requests, p{PCT:g} slowdown"]
    lines.append(
        f"{'rate':>5s} " + " ".join(f"{a+'-short':>17s}" for a in ALGOS)
        + " " + " ".join(f"{a+'-long':>17s}" for a in ALGOS)
    )
    for rate in rates:
        row = [f"{rate:5d}"]
        for cls in ("short", "long"):
            for algo in ALGOS:
                s = matrix[(algo, rate)].fct_summary(pct=PCT)
                v = getattr(s, cls)
                row.append(f"{v:17.2f}" if v is not None else f"{'-':>17s}")
        lines.append(" ".join(row))
    lines.append("")
    lines.append("paper 7c/7d: PowerTCP beats HPCC for short flows at every")
    lines.append("rate (33% at high rates) and by ~10% for long flows")
    emit("fig7cd_request_rate", lines)

    for rate in rates:
        power = matrix[("powertcp", rate)].fct_summary(pct=PCT)
        hpcc = matrix[("hpcc", rate)].fct_summary(pct=PCT)
        assert power.long <= hpcc.long * 1.25, rate


def test_fig7ef_request_size(benchmark):
    sizes = [1_000_000, 2_000_000, 8_000_000]

    def run():
        return sweep_matrix(
            grid={"algorithm": ALGOS, "request_size_bytes": sizes},
            base=dict(BASE, requests_per_duration=4),
            axis="request_size_bytes",
            persist="fig7ef_request_size",
        )

    matrix = once(benchmark, run)
    lines = [f"request-size sweep @ 4 requests/run, p{PCT:g} slowdown"]
    lines.append(
        f"{'size':>6s} " + " ".join(f"{a+'-short':>17s}" for a in ALGOS)
        + " " + " ".join(f"{a+'-long':>17s}" for a in ALGOS)
    )
    for size in sizes:
        row = [f"{size//1_000_000:5d}M"]
        for cls in ("short", "long"):
            for algo in ALGOS:
                s = matrix[(algo, size)].fct_summary(pct=PCT)
                v = getattr(s, cls)
                row.append(f"{v:17.2f}" if v is not None else f"{'-':>17s}")
        lines.append(" ".join(row))
    lines.append("")
    lines.append("paper 7e/7f: slowdowns grow gently with request size;")
    lines.append("PowerTCP stays ahead of HPCC for short flows")
    emit("fig7ef_request_size", lines)

    small = matrix[("powertcp", sizes[0])].fct_summary(pct=90.0)
    large = matrix[("powertcp", sizes[-1])].fct_summary(pct=90.0)
    assert large.overall >= small.overall * 0.8  # grows (within noise)

"""Fig. 7c-7f — web-search at 80 % load plus incast queries.

7c/7d sweep the request *rate* (incast frequency) at 2 MB request size;
7e/7f sweep the request *size* at a fixed rate.  Claims reproduced:
PowerTCP improves short-flow tails over HPCC under bursty traffic without
sacrificing long flows; θ-PowerTCP helps short flows but hurts long ones.
"""

from benchharness import emit, once

from repro.experiments.bursty import BurstyConfig, run_bursty
from repro.units import MSEC

ALGOS = ["powertcp", "theta-powertcp", "hpcc"]
SCALE = 1 / 16
PCT = 99.0
FLOWS = 200


def run_cell(algo, requests, request_size):
    return run_bursty(
        BurstyConfig(
            algorithm=algo,
            load=0.8,
            requests_per_duration=requests,
            request_size_bytes=request_size,
            fanout=8,
            duration_ns=20 * MSEC,
            drain_ns=40 * MSEC,
            size_scale=SCALE,
            max_flows=FLOWS,
        )
    )


def test_fig7cd_request_rate(benchmark):
    rates = [1, 4, 16]

    def run():
        return {
            (algo, rate): run_cell(algo, rate, 2_000_000)
            for algo in ALGOS
            for rate in rates
        }

    matrix = once(benchmark, run)
    lines = [f"request-rate sweep @ 2MB requests, p{PCT:g} slowdown"]
    lines.append(
        f"{'rate':>5s} " + " ".join(f"{a+'-short':>17s}" for a in ALGOS)
        + " " + " ".join(f"{a+'-long':>17s}" for a in ALGOS)
    )
    for rate in rates:
        row = [f"{rate:5d}"]
        for cls in ("short", "long"):
            for algo in ALGOS:
                s = matrix[(algo, rate)].fct_summary(pct=PCT)
                v = getattr(s, cls)
                row.append(f"{v:17.2f}" if v is not None else f"{'-':>17s}")
        lines.append(" ".join(row))
    lines.append("")
    lines.append("paper 7c/7d: PowerTCP beats HPCC for short flows at every")
    lines.append("rate (33% at high rates) and by ~10% for long flows")
    emit("fig7cd_request_rate", lines)

    for rate in rates:
        power = matrix[("powertcp", rate)].fct_summary(pct=PCT)
        hpcc = matrix[("hpcc", rate)].fct_summary(pct=PCT)
        assert power.long <= hpcc.long * 1.25, rate


def test_fig7ef_request_size(benchmark):
    sizes = [1_000_000, 2_000_000, 8_000_000]

    def run():
        return {
            (algo, size): run_cell(algo, 4, size)
            for algo in ALGOS
            for size in sizes
        }

    matrix = once(benchmark, run)
    lines = [f"request-size sweep @ 4 requests/run, p{PCT:g} slowdown"]
    lines.append(
        f"{'size':>6s} " + " ".join(f"{a+'-short':>17s}" for a in ALGOS)
        + " " + " ".join(f"{a+'-long':>17s}" for a in ALGOS)
    )
    for size in sizes:
        row = [f"{size//1_000_000:5d}M"]
        for cls in ("short", "long"):
            for algo in ALGOS:
                s = matrix[(algo, size)].fct_summary(pct=PCT)
                v = getattr(s, cls)
                row.append(f"{v:17.2f}" if v is not None else f"{'-':>17s}")
        lines.append(" ".join(row))
    lines.append("")
    lines.append("paper 7e/7f: slowdowns grow gently with request size;")
    lines.append("PowerTCP stays ahead of HPCC for short flows")
    emit("fig7ef_request_size", lines)

    small = matrix[("powertcp", sizes[0])].fct_summary(pct=90.0)
    large = matrix[("powertcp", sizes[-1])].fct_summary(pct=90.0)
    assert large.overall >= small.overall * 0.8  # grows (within noise)

"""Figs. 10/11 (Appendix D) — HOMA incast reaction at overcommitment 1-6.

Fig. 11: 10:1 incast; Fig. 10: large fan-in (paper 255:1, scaled to 64:1
here).  The paper's observation: higher overcommitment admits more
unscheduled+granted traffic concurrently, so queues grow with the level
while throughput stays saturated.
"""

from benchharness import emit, fmt_kb, grid_sweep, once

from repro.units import MSEC

LEVELS = [1, 2, 4, 6]


def run_levels(fanout, burst_bytes, duration_ns, persist):
    sweep = grid_sweep(
        "incast",
        grid={"cc_params": [{"overcommitment": oc} for oc in LEVELS]},
        base=dict(
            algorithm="homa",
            fanout=fanout,
            burst_bytes=burst_bytes,
            duration_ns=duration_ns,
        ),
        persist=persist,
    )
    return {
        cell.params["cc_params"]["overcommitment"]: cell.result.raw
        for cell in sweep.cells
    }


def summarize(name, results, fanout):
    lines = [
        f"{'OC':>3s} {'peakQ':>10s} {'settledQ':>10s} {'burst-util':>10s} {'done':>8s}"
    ]
    for oc, r in results.items():
        lines.append(
            f"{oc:>3d} {fmt_kb(r.peak_qlen_bytes):>10s} "
            f"{fmt_kb(r.mean_late_qlen()):>10s} {r.burst_utilization():10.2f} "
            f"{len(r.burst_fcts_ns):>4d}/{fanout:<3d}"
        )
    lines.append("")
    lines.append("paper figs 10/11: throughput saturated at all levels;")
    lines.append("queue occupancy does not converge to zero during the burst")
    emit(name, lines)


def test_fig11_homa_10to1(benchmark):
    results = once(
        benchmark,
        lambda: run_levels(10, 200_000, 4 * MSEC, "fig11_homa_10to1"),
    )
    summarize("fig11_homa_10to1", results, 10)
    for oc, r in results.items():
        assert len(r.burst_fcts_ns) == 10, oc
        assert r.burst_utilization() > 0.9, oc


def test_fig10_homa_large_fanin(benchmark):
    results = once(
        benchmark,
        lambda: run_levels(64, 60_000, 10 * MSEC, "fig10_homa_large_fanin"),
    )
    summarize("fig10_homa_large_fanin", results, 64)
    for oc, r in results.items():
        # High overcommitment lets SRPT starve the largest-remaining
        # message near the horizon; allow a one-flow straggler.
        assert len(r.burst_fcts_ns) >= 63, oc
    # Peak queue grows (or stays) with the overcommitment level.
    assert results[6].peak_qlen_bytes >= results[1].peak_qlen_bytes * 0.8

"""Fig. 5 — fairness and stability: staggered flows sharing a bottleneck.

Claims reproduced: PowerTCP converges to the fair share quickly as flows
arrive (Jain index ~1 in every epoch); θ-PowerTCP converges but more
slowly (delay signal); TIMELY oscillates; HOMA's sharing depends on its
scheduler.
"""

from benchharness import emit, grid_sweep, once

ALGOS = ["powertcp", "theta-powertcp", "timely", "homa"]


def run_all():
    sweep = grid_sweep(
        "fairness", grid={"algorithm": ALGOS}, persist="fig5_fairness"
    )
    return {cell.params["algorithm"]: cell.result.raw for cell in sweep.cells}


def test_fig5_fairness(benchmark):
    results = once(benchmark, run_all)
    lines = [f"{'algorithm':>15s}  Jain index per join-epoch (1 flow .. 4 flows)"]
    for algo, r in results.items():
        epochs = "  ".join(f"{j:5.3f}" for j in r.epoch_jain)
        lines.append(f"{algo:>15s}  {epochs}")
    lines.append("")
    lines.append("paper: PowerTCP stabilizes to fair share quickly on every")
    lines.append("       arrival; HOMA/TIMELY are visibly less stable")
    emit("fig5_fairness", lines)

    assert results["powertcp"].final_epoch_jain() > 0.95
    assert results["theta-powertcp"].final_epoch_jain() > 0.9
    # PowerTCP is at least as fair as TIMELY in the final epoch.
    assert (
        results["powertcp"].final_epoch_jain()
        >= results["timely"].final_epoch_jain() - 0.02
    )

"""CI campaign smoke: the fault-injection campaign end to end.

Runs ``python -m repro campaign`` twice against the committed
``smoke.json`` template (``{tmp}`` placeholders land in a fresh temp
directory so the checked-out tree stays clean):

1. **Recoverable faults** — every non-ok cell raises, hard-exits, or
   hangs on its *first* attempt (``fail_times: 1``) and must recover:
   exit 0, merged output complete, every injected cell carrying
   ``attempts > 1`` retry provenance, no failure report.
2. **Exhausted retries** — the same grid's ``fail`` cells with
   ``fail_times: -1`` (every attempt fails): exit 1, the merged output
   still complete (failed cells present with error provenance), and the
   failure report listing exactly the injected cells.

Any assertion failure exits non-zero, turning the CI job red.
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
TEMPLATE = os.path.join(HERE, "smoke.json")


def _load_template(tmp):
    with open(TEMPLATE) as handle:
        text = handle.read()
    return json.loads(text.replace("{tmp}", tmp.replace("\\", "/")))


def _run_campaign(manifest, path):
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=1)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "campaign", path, "--quiet"],
        timeout=600,
    )
    return proc.returncode


def _cells(out_path):
    with open(out_path) as handle:
        doc = json.load(handle)
    return {
        (c["params"]["behavior"], c["params"]["x"]): c for c in doc["cells"]
    }


def check(condition, message):
    if not condition:
        raise SystemExit(f"campaign smoke FAILED: {message}")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        # -- phase 1: every injected fault recovers under retry --------
        manifest = _load_template(tmp)
        rc = _run_campaign(manifest, os.path.join(tmp, "m1.json"))
        check(rc == 0, f"recoverable-fault campaign exited {rc}, wanted 0")
        cells = _cells(manifest["out"])
        check(len(cells) == 8, f"merged {len(cells)} cells, wanted 8")
        for (behavior, x), cell in sorted(cells.items()):
            check(
                cell.get("status", "ok") == "ok",
                f"cell ({behavior}, x={x}) ended {cell.get('status')!r}",
            )
            if behavior != "ok":
                check(
                    cell.get("attempts", 1) > 1,
                    f"injected cell ({behavior}, x={x}) lacks retry "
                    "provenance (attempts > 1)",
                )
        check(
            not os.path.exists(manifest["out"].replace(".json", ".failures.json")),
            "all-recovered campaign left a failure report behind",
        )
        print(f"phase 1 ok: 8/8 cells recovered, retries carry provenance")

        # -- phase 2: always-failing cells exhaust retries -------------
        manifest = _load_template(tmp)
        manifest["grid"]["behavior"] = ["fail"]
        manifest["base"]["fail_times"] = -1
        manifest["base"]["state_dir"] = os.path.join(tmp, "state2")
        manifest["out"] = os.path.join(tmp, "alwaysfail.json")
        manifest["limits"]["max_attempts"] = 2
        rc = _run_campaign(manifest, os.path.join(tmp, "m2.json"))
        check(rc == 1, f"exhausted-retries campaign exited {rc}, wanted 1")
        cells = _cells(manifest["out"])
        check(len(cells) == 2, "failed cells missing from the merged output")
        for cell in cells.values():
            check(cell.get("status") == "failed", "cell not marked failed")
            check(cell.get("attempts") == 2, "attempt count not recorded")
            check(
                cell.get("error", {}).get("type") == "InjectedFailure",
                "error provenance missing from failed cell",
            )
        failures_path = manifest["out"].replace(".json", ".failures.json")
        check(os.path.exists(failures_path), "failure report not written")
        with open(failures_path) as handle:
            report = json.load(handle)
        injected = sorted(f["params"]["x"] for f in report["failures"])
        check(
            report["failed_cells"] == 2 and injected == [1, 2],
            f"failure report lists {injected}, wanted the injected [1, 2]",
        )
        print("phase 2 ok: exhausted retries reported with provenance")
    print("campaign smoke PASSED")


if __name__ == "__main__":
    main()

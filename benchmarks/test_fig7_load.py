"""Fig. 7a/7b — short/long-flow tail slowdown across loads 20-80 %.

Paper claims: PowerTCP's short-flow benefits over HPCC grow with load
(7a); long flows are not penalized, and θ-PowerTCP is consistently worse
for long flows (7b).
"""

from benchharness import emit, grid_sweep, once

from repro.units import MSEC

ALGOS = ["powertcp", "theta-powertcp", "hpcc"]
LOADS = [0.2, 0.4, 0.6, 0.8]
SCALE = 1 / 16
PCT = 99.0
FLOWS = 400


def run_matrix():
    # One 3x4 grid through the shared runner (seed pinned to the config
    # default so the series match the pre-registry nested loops).
    sweep = grid_sweep(
        "websearch",
        grid={"algorithm": ALGOS, "load": LOADS},
        base=dict(
            duration_ns=20 * MSEC,
            drain_ns=40 * MSEC,
            size_scale=SCALE,
            max_flows=FLOWS,
            seed=1,
        ),
    )
    return {
        (cell.params["algorithm"], cell.params["load"]): cell.result.raw
        for cell in sweep.cells
    }


def test_fig7ab_load_sweep(benchmark):
    matrix = once(benchmark, run_matrix)

    def table(cls):
        lines = [f"{'load':>6s} " + " ".join(f"{a:>15s}" for a in ALGOS)]
        for load in LOADS:
            row = [f"{load:6.0%}"]
            for algo in ALGOS:
                summary = matrix[(algo, load)].fct_summary(pct=PCT)
                value = getattr(summary, cls)
                row.append(f"{value:15.2f}" if value is not None else f"{'-':>15s}")
            lines.append(" ".join(row))
        return lines

    lines = [f"Fig 7a — short flows, p{PCT:g} slowdown vs load"]
    lines += table("short")
    lines.append("")
    lines.append(f"Fig 7b — long flows, p{PCT:g} slowdown vs load")
    lines += table("long")
    lines.append("")
    lines.append("paper: PowerTCP short-flow gains grow with load; theta-")
    lines.append("PowerTCP long flows are consistently worse than PowerTCP/HPCC")
    emit("fig7ab_load_sweep", lines)

    # Long flows: PowerTCP comparable to HPCC at every load; theta worse.
    for load in LOADS:
        power = matrix[("powertcp", load)].fct_summary(pct=PCT)
        hpcc = matrix[("hpcc", load)].fct_summary(pct=PCT)
        theta = matrix[("theta-powertcp", load)].fct_summary(pct=PCT)
        assert power.long <= hpcc.long * 1.2, load
        assert theta.long >= power.long * 0.9, load
    # Slowdowns grow with load for every algorithm.
    for algo in ALGOS:
        lo = matrix[(algo, 0.2)].fct_summary(pct=90.0)
        hi = matrix[(algo, 0.8)].fct_summary(pct=90.0)
        assert hi.overall >= lo.overall * 0.9, algo

"""Setup shim: packaging plus the optional compiled event core.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build an editable wheel.  This shim
lets ``python setup.py develop`` provide the equivalent editable install.

The ``repro._ckernel.corekernel`` extension is *optional*: with no C
compiler (or a broken toolchain) the build emits a warning and the
install still succeeds — the engine then runs on the pure-Python heap
path, which is the behavioral reference (see
``docs/INVARIANTS.md#compiled-parity``).  Build in place with::

    python setup.py build_ext --inplace
"""

from setuptools import Extension, find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    ext_modules=[
        Extension(
            "repro._ckernel.corekernel",
            sources=["src/repro/_ckernel/corekernel.c"],
            optional=True,
        )
    ],
)

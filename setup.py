"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build an editable wheel.  This shim
lets ``python setup.py develop`` provide the equivalent editable install;
all metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
